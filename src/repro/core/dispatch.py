"""Coupled vs. asynchronous scheduling/dispatch.

Paper §3.1.1: "Scheduling and dispatch may be performed asynchronously with
respect to each other. Asynchronous scheduling and dispatch may require an
additional dispatch queue, but allows scheduling decisions to be made at a
higher rate. Coupling scheduling and dispatch allows a single data
structure to hold frame descriptors and conserves memory. Also, packets do
not suffer additional queuing delay and jitter in dispatch queues."

:class:`CoupledDispatcher` performs the device programming inline in the
scheduler's cycle (what :class:`~repro.core.engine.StreamingEngine` does by
default). :class:`AsyncDispatcher` runs dispatch as its own task fed by a
bounded dispatch queue, and instruments exactly the two quantities the
paper trades off: dispatch-queue residence time (added delay) and its
variance (added jitter).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.fixedpoint import OpCounter
from repro.hw.cpu import CPU
from repro.media.frames import FrameDescriptor
from repro.rtos.task import Task
from repro.sim import Environment, Event, Store, TallyStats

from .dwcs import DWCSScheduler

__all__ = ["CoupledDispatcher", "AsyncDispatcher"]

TransmitFn = Callable[[FrameDescriptor], Generator]


class CoupledDispatcher:
    """Inline dispatch: charge device programming in the scheduler's cycle."""

    name = "coupled"

    def __init__(
        self,
        env: Environment,
        scheduler: DWCSScheduler,
        cpu: CPU,
        transmit: TransmitFn,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.cpu = cpu
        self.transmit = transmit
        self.dispatched = 0
        #: residence is zero by construction; kept for interface symmetry
        self.queue_residence_us = TallyStats("coupled.residence")

    def submit(self, desc: FrameDescriptor, task: Task) -> Generator:
        """Process fragment: dispatch *desc* inline on *task*."""
        obs = self.env.obs
        sp = (
            obs.begin(
                "dispatch",
                track=f"cpu:{self.cpu.name}",
                stream=desc.stream_id,
                seq=desc.frame.seqno,
                mode=self.name,
            )
            if obs is not None
            else None
        )
        d_ops = self.scheduler.dispatch_ops()
        yield task.compute(self.cpu.time_for(d_ops))
        self.queue_residence_us.add(0.0)
        self.dispatched += 1
        if obs is not None:
            obs.end(sp)
            obs.count("dispatch.frames", mode=self.name)
        self.env.process(self.transmit(desc))

    @property
    def backlog(self) -> int:
        return 0


class AsyncDispatcher:
    """Decoupled dispatch: a queue plus a dedicated dispatch task.

    The scheduler hands descriptors over in O(queue-put) and returns to
    decision-making immediately; this object's task drains the queue,
    charging dispatch cost per frame. ``queue_residence_us`` records the
    added delay; its stdev is the added jitter.
    """

    name = "async"

    def __init__(
        self,
        env: Environment,
        scheduler: DWCSScheduler,
        cpu: CPU,
        transmit: TransmitFn,
        capacity: int = 256,
    ) -> None:
        if capacity < 1:
            raise ValueError("dispatch queue capacity must be >= 1")
        self.env = env
        self.scheduler = scheduler
        self.cpu = cpu
        self.transmit = transmit
        self.queue: Store = Store(env, capacity=capacity, name="dispatchq")
        self.dispatched = 0
        self.queue_residence_us = TallyStats("async.residence")

    def submit(self, desc: FrameDescriptor, task: Task) -> Generator:
        """Process fragment: enqueue *desc* (blocks only when the queue is
        full — backpressure to the scheduler)."""
        ops = OpCounter(mem_writes=2, int_ops=4)  # queue-put bookkeeping
        yield task.compute(self.cpu.time_for(ops))
        yield self.queue.put((self.env.now, desc))

    def task_body(self, task: Task) -> Generator:
        """The dispatch task: drain the queue forever."""
        while True:
            queued_at, desc = yield self.queue.get()
            obs = self.env.obs
            sp = (
                obs.begin(
                    "dispatch",
                    track=f"cpu:{self.cpu.name}",
                    stream=desc.stream_id,
                    seq=desc.frame.seqno,
                    mode=self.name,
                )
                if obs is not None
                else None
            )
            d_ops = self.scheduler.dispatch_ops()
            yield task.compute(self.cpu.time_for(d_ops))
            self.queue_residence_us.add(self.env.now - queued_at)
            self.dispatched += 1
            if obs is not None:
                obs.end(sp)
                obs.count("dispatch.frames", mode=self.name)
                obs.observe("dispatch.residence_us", self.env.now - queued_at, mode=self.name)
            self.env.process(self.transmit(desc))

    @property
    def backlog(self) -> int:
        return len(self.queue)
