"""DWCS precedence rules and head-of-line selection structures.

The pairwise precedence rules (West/Schwan; see DESIGN.md §3):

1. earliest deadline first;
2. equal deadlines → lowest window-constraint x'/y' first;
3. equal deadlines, both constraints zero → highest window-denominator y';
4. equal deadlines, equal non-zero constraints → lowest window-numerator x';
5. all else equal → first-come-first-served.

Two selection structures implement the same total order:

* :class:`LinearScan` — O(n) sweep over head packets (the reference);
* :class:`DualHeaps` — the paper's embedded build (Figure 4a): a deadline
  heap plus a loss-tolerance heap over head-of-line packets.

Both must always pick the same stream (tested); they differ only in the
operation counts they charge, which is exactly the data-structure
"experimentation" the paper's extensible design calls for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fixedpoint import ArithmeticContext, OpCounter

from .attributes import StreamState
from .heaps import OpHeap

__all__ = ["Entry", "compare_entries", "SelectionStructure", "LinearScan", "DualHeaps"]


class Entry:
    """A stream's head-of-line scheduling entry."""

    __slots__ = ("state", "head_enqueued_at")

    def __init__(self, state: StreamState, head_enqueued_at: float) -> None:
        self.state = state
        self.head_enqueued_at = head_enqueued_at

    @property
    def stream_id(self) -> str:
        return self.state.stream_id

    def __repr__(self) -> str:
        return f"<Entry {self.stream_id!r} dl={self.state.deadline_us}>"


def compare_entries(a: Entry, b: Entry, ctx: ArithmeticContext, ops: OpCounter) -> int:
    """Total order over head packets; negative ⇒ *a* is served first."""
    sa, sb = a.state, b.state
    # Rule 1: earliest deadline first.
    ops.mem_reads += 2
    ops.branches += 1
    da, db = sa.deadline_us, sb.deadline_us
    if da != db:
        return -1 if (da is not None and (db is None or da < db)) else 1
    # Rule 2: lowest window-constraint first.
    ops.mem_reads += 2  # load both constraint fractions
    ca, cb = sa.constraint, sb.constraint
    order = ctx.compare(ca, cb)
    if order != 0:
        return order
    # Rule 3: both zero → highest window-denominator first.
    if ctx.is_zero(ca):
        ops.mem_reads += 2
        ops.branches += 1
        if sa.y_cur != sb.y_cur:
            return -1 if sa.y_cur > sb.y_cur else 1
    else:
        # Rule 4: equal non-zero constraints → lowest numerator first.
        ops.mem_reads += 2
        ops.branches += 1
        if sa.x_cur != sb.x_cur:
            return -1 if sa.x_cur < sb.x_cur else 1
    # Rule 5: FCFS on head-packet arrival, then stream creation order.
    ops.mem_reads += 2
    ops.branches += 1
    if a.head_enqueued_at != b.head_enqueued_at:
        return -1 if a.head_enqueued_at < b.head_enqueued_at else 1
    return -1 if sa.created_seq < sb.created_seq else (
        0 if sa.created_seq == sb.created_seq else 1
    )


class SelectionStructure:
    """Interface: maintain entries, select the highest-priority stream."""

    name = "abstract"

    def __init__(self, ctx: ArithmeticContext) -> None:
        self.ctx = ctx

    def add(self, entry: Entry, ops: OpCounter) -> None:
        raise NotImplementedError

    def remove(self, entry: Entry, ops: OpCounter) -> None:
        raise NotImplementedError

    def reorder(self, entry: Entry, ops: OpCounter) -> None:
        """Called after an entry's deadline/constraint changed in place."""
        raise NotImplementedError

    def select(self, ops: OpCounter) -> Optional[Entry]:
        raise NotImplementedError

    def late_entries(self, now_us: float, ops: OpCounter) -> list[Entry]:
        """Entries whose head deadline has passed (for miss processing).

        The structure-driven miss scan: a linear structure inspects every
        entry; the deadline heap finds the late cohort in O(k log n).
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LinearScan(SelectionStructure):
    """Reference O(n) sweep (also models the FCFS-circular-buffer variant
    of the paper's 'extensible scheduler design' discussion)."""

    name = "linear-scan"

    def __init__(self, ctx: ArithmeticContext) -> None:
        super().__init__(ctx)
        self._entries: list[Entry] = []

    def add(self, entry: Entry, ops: OpCounter) -> None:
        self._entries.append(entry)
        ops.mem_writes += 1

    def remove(self, entry: Entry, ops: OpCounter) -> None:
        # list.remove is an O(n) scan to the entry plus a left-shift of the
        # tail: charge the comparisons walked and the slots rewritten.
        idx = self._entries.index(entry)
        n = len(self._entries)
        ops.mem_reads += idx + 1
        ops.branches += idx + 1
        ops.mem_writes += n - idx  # tail shift + published length
        del self._entries[idx]

    def reorder(self, entry: Entry, ops: OpCounter) -> None:
        ops.mem_reads += 1  # nothing to maintain; order is scan-time

    def select(self, ops: OpCounter) -> Optional[Entry]:
        best: Optional[Entry] = None
        for entry in self._entries:
            ops.mem_reads += 1
            if best is None or compare_entries(entry, best, self.ctx, ops) < 0:
                best = entry
        return best

    def late_entries(self, now_us: float, ops: OpCounter) -> list[Entry]:
        late = []
        for entry in self._entries:
            ops.mem_reads += 1
            ops.branches += 1
            dl = entry.state.deadline_us
            if dl is not None and dl < now_us:
                late.append(entry)
        return late

    def __len__(self) -> int:
        return len(self._entries)


class DualHeaps(SelectionStructure):
    """The embedded build: deadline heap + loss-tolerance heap (Fig. 4a).

    Selection peeks the deadline heap; deadline ties among the top of the
    heap are resolved with loss-tolerance comparisons, mirroring how the
    embedded scheduler consults the second heap only on ties.
    """

    name = "dual-heaps"

    def __init__(self, ctx: ArithmeticContext) -> None:
        super().__init__(ctx)
        self._deadline_heap: OpHeap[Entry] = OpHeap(self._deadline_cmp)
        self._loss_heap: OpHeap[Entry] = OpHeap(self._loss_cmp)

    # heap comparators -------------------------------------------------------
    def _deadline_cmp(self, a: Entry, b: Entry, ops: OpCounter) -> int:
        da, db = a.state.deadline_us, b.state.deadline_us
        if da == db:
            return 0
        if da is None:
            return 1
        if db is None:
            return -1
        return -1 if da < db else 1

    def _loss_cmp(self, a: Entry, b: Entry, ops: OpCounter) -> int:
        return self.ctx.compare(a.state.constraint, b.state.constraint)

    # structure maintenance -------------------------------------------------------
    def add(self, entry: Entry, ops: OpCounter) -> None:
        self._deadline_heap.push(entry, ops)
        self._loss_heap.push(entry, ops)

    def remove(self, entry: Entry, ops: OpCounter) -> None:
        self._deadline_heap.remove(entry, ops)
        self._loss_heap.remove(entry, ops)

    def reorder(self, entry: Entry, ops: OpCounter) -> None:
        self._deadline_heap.update(entry, ops)
        self._loss_heap.update(entry, ops)

    def select(self, ops: OpCounter) -> Optional[Entry]:
        top = self._deadline_heap.peek()
        if top is None:
            return None
        deadline = top.state.deadline_us
        # Peek first: the second-best deadline sits at one of the root's
        # children (heap property — equal keys deeper down imply an equal
        # child), so the common no-tie case costs two comparisons instead
        # of a pop/push (two full sifts) of a single-entry cohort.
        tie = False
        for child in self._deadline_heap.peek_children():
            ops.mem_reads += 1
            ops.branches += 1
            if child.state.deadline_us == deadline:
                tie = True
                break
        if not tie:
            ops.mem_reads += 1  # load the winning entry's descriptor handle
            return top
        # Gather the deadline-tie cohort by popping equal-deadline entries
        # (the embedded code walks the heap top; pop/push-back charges the
        # equivalent sift work).
        cohort: list[Entry] = []
        while len(self._deadline_heap):
            candidate = self._deadline_heap.peek()
            assert candidate is not None
            ops.mem_reads += 1
            ops.branches += 1
            if candidate.state.deadline_us != deadline:
                break
            cohort.append(self._deadline_heap.pop_min(ops))
        best = cohort[0]
        for other in cohort[1:]:
            if compare_entries(other, best, self.ctx, ops) < 0:
                best = other
        for entry in cohort:
            self._deadline_heap.push(entry, ops)
        return best

    def late_entries(self, now_us: float, ops: OpCounter) -> list[Entry]:
        # Pop late heads off the deadline heap, then push them back: only
        # the late cohort (plus one peek) is ever touched — O(k log n).
        late: list[Entry] = []
        while len(self._deadline_heap):
            top = self._deadline_heap.peek()
            assert top is not None
            ops.mem_reads += 1
            ops.branches += 1
            dl = top.state.deadline_us
            if dl is None or dl >= now_us:
                break
            late.append(self._deadline_heap.pop_min(ops))
        for entry in late:
            self._deadline_heap.push(entry, ops)
        return late

    def __len__(self) -> int:
        return len(self._deadline_heap)
