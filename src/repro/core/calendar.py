"""Additional schedule representations: sorted list and calendar queue.

Paper §3.1.1: the extensible scheduler design "allows different data
structures to be used for experimentation (FCFS circular buffers, sorted
lists, heaps or calendar queues) with different packet schedule
representations". :mod:`repro.core.selection` provides the linear scan and
the dual heaps; this module adds the remaining two:

* :class:`SortedList` — entries kept fully ordered by the DWCS total order;
  selection is O(1), maintenance is O(n) shifts per reorder (binary search
  for position, memmove-style shifting — cheap for small n, ruinous at
  scale);
* :class:`CalendarQueue` — deadline-bucketed days (Brown's calendar queue):
  O(1) expected enqueue/dequeue when deadlines spread uniformly, degrading
  when many heads share a bucket. Ties within a bucket fall back to the
  DWCS precedence rules.

All four structures implement the same total order, so scheduler decisions
are identical — only operation profiles differ (verified by tests).
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.fixedpoint import ArithmeticContext, OpCounter

from .selection import Entry, SelectionStructure, compare_entries

__all__ = ["SortedList", "CalendarQueue"]


class SortedList(SelectionStructure):
    """Fully ordered entry list (insertion-sorted by the DWCS order)."""

    name = "sorted-list"

    def __init__(self, ctx: ArithmeticContext) -> None:
        super().__init__(ctx)
        self._entries: list[Entry] = []

    # -- maintenance ---------------------------------------------------------
    def _insert(self, entry: Entry, ops: OpCounter) -> None:
        # binary search for the insertion point (charged comparisons), then
        # shift-in (charged writes per moved slot)
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            ops.mem_reads += 1
            if compare_entries(self._entries[mid], entry, self.ctx, ops) < 0:
                lo = mid + 1
            else:
                hi = mid
        self._entries.insert(lo, entry)
        ops.mem_writes += max(1, len(self._entries) - lo)

    def add(self, entry: Entry, ops: OpCounter) -> None:
        if entry in self._entries:
            raise ValueError("entry already present")
        self._insert(entry, ops)

    def remove(self, entry: Entry, ops: OpCounter) -> None:
        idx = self._index_of(entry, ops)
        self._entries.pop(idx)
        ops.mem_writes += max(1, len(self._entries) - idx)

    def reorder(self, entry: Entry, ops: OpCounter) -> None:
        idx = self._index_of(entry, ops)
        self._entries.pop(idx)
        ops.mem_writes += max(1, len(self._entries) - idx)
        self._insert(entry, ops)

    def _index_of(self, entry: Entry, ops: OpCounter) -> int:
        # identity scan: the list may be stale-ordered for this entry (its
        # key changed in place), so binary search cannot be trusted
        for i, e in enumerate(self._entries):
            ops.mem_reads += 1
            if e is entry:
                return i
        raise KeyError("entry not present")

    # -- queries --------------------------------------------------------------
    def select(self, ops: OpCounter) -> Optional[Entry]:
        ops.mem_reads += 1
        return self._entries[0] if self._entries else None

    def late_entries(self, now_us: float, ops: OpCounter) -> list[Entry]:
        # ordered by deadline-dominant order: late heads form a prefix
        late = []
        for e in self._entries:
            ops.mem_reads += 1
            ops.branches += 1
            dl = e.state.deadline_us
            if dl is not None and dl < now_us:
                late.append(e)
            else:
                break
        return late

    def __len__(self) -> int:
        return len(self._entries)

    def check_sorted(self) -> bool:
        """Verification helper: list obeys the total order."""
        scratch = OpCounter()
        return all(
            compare_entries(a, b, self.ctx, scratch) <= 0
            for a, b in zip(self._entries, self._entries[1:])
        )


class CalendarQueue(SelectionStructure):
    """Deadline-bucketed calendar over head-of-line entries.

    Non-wrapping day index (``deadline // day_width``), one bucket per
    occupied day: equal deadlines always share a bucket, so the earliest
    occupied day contains the DWCS winner and the precedence rules only run
    within that bucket — O(bucket) selection plus an O(#occupied days) min.
    Entries whose key changed in place must be re-filed via ``reorder``
    (tracked through a side map, as a real implementation stores the
    entry's bucket handle in the descriptor).
    """

    name = "calendar-queue"

    def __init__(self, ctx: ArithmeticContext, day_width_us: float = 10_000.0) -> None:
        super().__init__(ctx)
        if day_width_us <= 0:
            raise ValueError("day width must be positive")
        self.day_width_us = day_width_us
        self._days: dict[int, list[Entry]] = {}
        #: bucket handle per entry (survives in-place key changes)
        self._filed_in: dict[int, int] = {}
        self._count = 0

    _UNANCHORED_DAY = 1 << 62  # sorts after every real deadline

    def _day_of(self, entry: Entry) -> int:
        dl = entry.state.deadline_us
        if dl is None:
            return self._UNANCHORED_DAY
        return int(dl // self.day_width_us)

    # -- maintenance ------------------------------------------------------------
    def add(self, entry: Entry, ops: OpCounter) -> None:
        if id(entry) in self._filed_in:
            raise ValueError("entry already present")
        day = self._day_of(entry)
        ops.int_ops += 1  # deadline -> bucket index
        ops.mem_writes += 1
        self._days.setdefault(day, []).append(entry)
        self._filed_in[id(entry)] = day
        self._count += 1

    def remove(self, entry: Entry, ops: OpCounter) -> None:
        day = self._filed_in.pop(id(entry), None)
        if day is None:
            raise KeyError("entry not present")
        bucket = self._days[day]
        ops.mem_reads += len(bucket)
        bucket.remove(entry)
        ops.mem_writes += 1
        if not bucket:
            del self._days[day]
        self._count -= 1

    def reorder(self, entry: Entry, ops: OpCounter) -> None:
        self.remove(entry, ops)
        self.add(entry, ops)

    # -- queries -----------------------------------------------------------------
    def select(self, ops: OpCounter) -> Optional[Entry]:
        if self._count == 0:
            return None
        first_day = min(self._days)
        ops.branches += len(self._days)  # min over the occupied-day index
        bucket = self._days[first_day]
        best = bucket[0]
        ops.mem_reads += 1
        for e in bucket[1:]:
            ops.mem_reads += 1
            if compare_entries(e, best, self.ctx, ops) < 0:
                best = e
        return best

    def late_entries(self, now_us: float, ops: OpCounter) -> list[Entry]:
        late = []
        horizon = int(now_us // self.day_width_us)
        for day in sorted(self._days):
            ops.branches += 1
            if day > horizon:
                break
            for e in self._days[day]:
                ops.mem_reads += 1
                ops.branches += 1
                dl = e.state.deadline_us
                if dl is not None and dl < now_us:
                    late.append(e)
        return late

    def __len__(self) -> int:
        return self._count
