"""Scheduler engines: driving DWCS on a simulated CPU.

Two drivers cover the paper's two measurement styles:

* :class:`MicrobenchEngine` — the Tables 1–3 loop: descriptors are
  pre-written into the rings, then the scheduler drains them back-to-back on
  a dedicated CPU (plain timeouts, no OS contention), work-conserving. Also
  provides the "w/o Scheduler" bypass: "we simply re-route execution in the
  code to a point where the address of the frame to be dispatched is readily
  available and does not need scheduler rules."

* :class:`StreamingEngine` — the Figures 7–10 service: the scheduler runs
  as an OS task (VxWorks on the NI, Solaris time-sharing on the host),
  paced by packet release times, with producers injecting concurrently. The
  rate at which the task's ``compute()`` requests are served is what host
  load degrades.

Both charge decision and dispatch costs through the CPU cost model and hand
transmissions to a caller-supplied ``transmit(descriptor)`` process factory
(fire-and-forget: the MAC serializes on its own link resource).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.fixedpoint import OpCounter
from repro.hw.cpu import CPU
from repro.media.frames import FrameDescriptor, MediaFrame
from repro.rtos.task import Task
from repro.sim import Environment, Event, TallyStats, TimeSeries

from .dwcs import Decision, DWCSScheduler

__all__ = ["MicrobenchEngine", "MicrobenchResult", "StreamingEngine"]

TransmitFn = Callable[[FrameDescriptor], Generator]


@dataclass
class MicrobenchResult:
    """Timing outcome of a drain-the-rings run (one Table 1/2/3 column)."""

    frames: int
    total_us: float

    @property
    def avg_frame_us(self) -> float:
        return self.total_us / self.frames if self.frames else 0.0


class MicrobenchEngine:
    """Tables 1–3: drain pre-filled rings on a dedicated CPU."""

    def __init__(
        self,
        env: Environment,
        scheduler: DWCSScheduler,
        cpu: CPU,
        working_set_bytes: Optional[int] = None,
    ) -> None:
        if not scheduler.work_conserving:
            raise ValueError("microbenchmarks drain back-to-back: use work_conserving=True")
        self.env = env
        self.scheduler = scheduler
        self.cpu = cpu
        self.working_set_bytes = working_set_bytes

    def run_with_scheduler(self) -> Generator[Event, None, MicrobenchResult]:
        """Process: schedule+dispatch every queued frame ('Total Sched time')."""
        start = self.env.now
        frames = 0
        while self.scheduler.backlog:
            decision = self.scheduler.schedule(self.env.now)
            yield self.env.timeout(
                self.cpu.time_for(decision.ops, self.working_set_bytes)
            )
            if decision.serviced is not None:
                d_ops = self.scheduler.dispatch_ops()
                yield self.env.timeout(self.cpu.time_for(d_ops, self.working_set_bytes))
                frames += 1
        return MicrobenchResult(frames=frames, total_us=self.env.now - start)

    def run_without_scheduler(self) -> Generator[Event, None, MicrobenchResult]:
        """Process: the bypass loop — dispatch only, no scheduler rules."""
        start = self.env.now
        frames = 0
        scratch = OpCounter()
        for queue in self.scheduler.queues.values():
            while not queue.empty:
                # the frame address is "readily available": one ring pop
                queue.pop(scratch)
                d_ops = self.scheduler.dispatch_ops()
                yield self.env.timeout(self.cpu.time_for(d_ops, self.working_set_bytes))
                frames += 1
        return MicrobenchResult(frames=frames, total_us=self.env.now - start)


class StreamingEngine:
    """Figures 7–10: DWCS as an OS task serving live producers."""

    def __init__(
        self,
        env: Environment,
        scheduler: DWCSScheduler,
        cpu: CPU,
        transmit: TransmitFn,
        working_set_bytes: Optional[int] = None,
        idle_poll_us: float = 2_000.0,
        dispatcher: Optional[object] = None,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.cpu = cpu
        self.transmit = transmit
        self.working_set_bytes = working_set_bytes
        #: optional dispatch strategy (see :mod:`repro.core.dispatch`);
        #: None keeps the default coupled, inline dispatch
        self.dispatcher = dispatcher
        #: optional callback invoked for every dropped descriptor (frame
        #: memory reclamation, loss reporting, ...)
        self.on_drop: Optional[Callable[[FrameDescriptor], None]] = None
        #: optional callback invoked after every cycle that changed stream
        #: state (a dispatch and/or drops) — the checkpointing plane's hook;
        #: receives the :class:`~repro.core.dwcs.Decision`
        self.on_epoch: Optional[Callable[[Decision], None]] = None
        #: state-changing cycles completed (epochs the HA plane mirrors)
        self.epochs = 0
        #: how long to sleep when nothing is eligible and no release is known
        self.idle_poll_us = idle_poll_us
        self._wakeup: Optional[Event] = None
        self.stopped = False
        #: True while the dispatch substrate is down (NI crash): the task
        #: parks instead of scheduling into a dead transmit path
        self.paused = False
        self._resume: Optional[Event] = None
        # -- instrumentation (per stream) -----------------------------------
        #: queuing delay of each dispatched frame, µs (Figures 8/10)
        self.queuing_delay_us: dict[str, TimeSeries] = {}
        self.delay_stats: dict[str, TallyStats] = {}
        self.frames_sent: dict[str, int] = {}
        #: open scheduler-queue spans, keyed by descriptor identity; ended
        #: on dispatch or drop (observability plane only)
        self._squeue_spans: dict[int, int] = {}

    # -- producer-facing ------------------------------------------------------
    def submit(self, frame: MediaFrame, address: int = 0) -> FrameDescriptor:
        """Inject a frame and wake the scheduler task if it is idle."""
        desc = self.scheduler.enqueue(frame, self.env.now, address=address)
        obs = self.env.obs
        if obs is not None:
            sp = obs.begin(
                "squeue",
                track="sched:rings",
                stream=frame.stream_id,
                seq=frame.seqno,
            )
            if sp is not None:
                self._squeue_spans[id(desc)] = sp
            obs.count("engine.frames_submitted", stream=frame.stream_id)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return desc

    def stop(self) -> None:
        self.stopped = True
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        if self._resume is not None and not self._resume.triggered:
            self._resume.succeed()

    def pause(self) -> None:
        """Park the scheduler task (transmit path down, e.g. NI crash).

        Producers may keep submitting — frames queue in the rings and age;
        on :meth:`resume` the scheduler's normal miss processing drops the
        late ones and accounts the violations.
        """
        self.paused = True

    def resume(self) -> None:
        """Restart scheduling after a pause (NI reset complete)."""
        if not self.paused:
            return
        self.paused = False
        if self._resume is not None and not self._resume.triggered:
            self._resume.succeed()

    # -- the scheduler task -------------------------------------------------------
    def task_body(self, task: Task) -> Generator:
        """OS-task body: run scheduling cycles, paced by releases and load."""
        env = self.env
        while not self.stopped:
            if self.paused:
                self._resume = env.event()
                yield self._resume
                self._resume = None
                continue
            decision = self.scheduler.schedule(env.now)
            yield task.compute(self.cpu.time_for(decision.ops, self.working_set_bytes))
            obs = env.obs
            if obs is not None:
                for dropped in decision.dropped:
                    obs.end(
                        self._squeue_spans.pop(id(dropped), None), dropped=True
                    )
                    obs.count("engine.frames_dropped", stream=dropped.stream_id)
                    obs.instant(
                        "frame_drop",
                        track="sched:rings",
                        stream=dropped.stream_id,
                        seq=dropped.frame.seqno,
                    )
            if self.on_drop is not None:
                for dropped in decision.dropped:
                    self.on_drop(dropped)
            if decision.serviced is not None or decision.dropped:
                # stream state moved this cycle: an engine epoch the
                # checkpointing plane may mirror to host memory
                self.epochs += 1
                if self.on_epoch is not None:
                    self.on_epoch(decision)
            if decision.serviced is not None:
                if self.dispatcher is not None:
                    # strategy object decides coupled/async behaviour;
                    # queuing delay here records scheduler-side hand-off
                    yield from self.dispatcher.submit(decision.serviced, task)
                else:
                    d_ops = self.scheduler.dispatch_ops()
                    sp = (
                        obs.begin(
                            "dispatch",
                            track=f"cpu:{self.cpu.name}",
                            stream=decision.serviced.stream_id,
                            seq=decision.serviced.frame.seqno,
                        )
                        if obs is not None
                        else None
                    )
                    yield task.compute(
                        self.cpu.time_for(d_ops, self.working_set_bytes)
                    )
                    if obs is not None:
                        obs.end(sp)
                    env.process(self.transmit(decision.serviced))
                self._record_dispatch(decision)
            elif self.scheduler.backlog == 0 or decision.idle_until is not None:
                # Nothing to send: sleep until a release or a new arrival.
                if decision.idle_until is not None and decision.idle_until > env.now:
                    delay = decision.idle_until - env.now
                else:
                    delay = self.idle_poll_us
                self._wakeup = env.event()
                yield self._wakeup | env.timeout(delay)
                self._wakeup = None

    def _record_dispatch(self, decision: Decision) -> None:
        desc = decision.serviced
        assert desc is not None
        sid = desc.stream_id
        delay = self.env.now - desc.enqueued_at_us
        if sid not in self.queuing_delay_us:
            self.queuing_delay_us[sid] = TimeSeries(f"{sid}.qdelay")
            self.delay_stats[sid] = TallyStats(f"{sid}.qdelay")
            self.frames_sent[sid] = 0
        self.frames_sent[sid] += 1
        self.queuing_delay_us[sid].record(self.env.now, delay)
        self.delay_stats[sid].add(delay)
        obs = self.env.obs
        if obs is not None:
            obs.end(self._squeue_spans.pop(id(desc), None))
            obs.count("engine.frames_dispatched", stream=sid)
            obs.observe("engine.queuing_delay_us", delay, stream=sid)
