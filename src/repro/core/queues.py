"""Per-stream packet queues: pinned-memory rings vs hardware-queue rings.

"Frames or packets are stored in circular buffers on a per-stream basis ...
Using a circular queue for each stream eliminates the need for
synchronization between the scheduler that selects the next packet for
service, and the server that queues packets to be scheduled." (Figure 4b.)

Two builds of the same ring:

* :class:`CircularBufferQueue` — descriptors in pinned local card memory
  (the Table 1/2 build); accesses tally normal memory references, so the
  data cache matters.
* :class:`HardwareQueueRing` — descriptor *handles* in the i960 RD's
  memory-mapped register file (the Table 3 build); accesses tally MMIO
  references, which bypass the cache and generate no external bus cycles.
  Frames themselves always stay in pinned memory ("the actual frames are
  located in pinned local memory address space").
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.fixedpoint import OpCounter
from repro.hw.memory import HardwareQueueFile
from repro.media.frames import FrameDescriptor

__all__ = ["PacketQueue", "CircularBufferQueue", "HardwareQueueRing", "TaggedQueue", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Raised when a producer injects into a full ring."""


class PacketQueue:
    """Interface shared by both ring builds.

    Single producer + single consumer by construction (separate head/tail
    pointers) — no locking, as in the paper.
    """

    def __init__(self, stream_id: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.stream_id = stream_id
        self.capacity = capacity
        self._head = 0  # scheduler reads here
        self._tail = 0  # producer writes here
        self.enqueued_total = 0
        self.dequeued_total = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def empty(self) -> bool:
        return self._head == self._tail

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    # subclass storage hooks ------------------------------------------------
    def _store(self, slot: int, desc: FrameDescriptor, ops: OpCounter) -> None:
        raise NotImplementedError

    def _load(self, slot: int, ops: OpCounter) -> FrameDescriptor:
        raise NotImplementedError

    # ring operations ----------------------------------------------------------
    def enqueue(self, desc: FrameDescriptor, ops: OpCounter) -> None:
        """Producer side: write at the tail pointer."""
        if self.full:
            raise QueueFullError(f"stream {self.stream_id!r} ring full")
        self._store(self._tail % self.capacity, desc, ops)
        self._tail += 1
        self.enqueued_total += 1
        ops.int_ops += 2  # tail increment + wrap
        ops.mem_writes += 1  # publish new tail

    def head(self, ops: OpCounter) -> Optional[FrameDescriptor]:
        """Scheduler side: peek the head-of-line descriptor."""
        ops.mem_reads += 1  # load head/tail pointer pair (same line)
        ops.branches += 1
        if self.empty:
            return None
        return self._load(self._head % self.capacity, ops)

    def pop(self, ops: OpCounter) -> FrameDescriptor:
        """Scheduler side: consume the head-of-line descriptor."""
        desc = self.head(ops)
        if desc is None:
            raise IndexError(f"stream {self.stream_id!r} ring empty")
        self._head += 1
        self.dequeued_total += 1
        ops.int_ops += 2
        ops.mem_writes += 1  # publish new head
        return desc


class TaggedQueue(PacketQueue):
    """Per-stream queue ordered by a per-packet *service tag*.

    Paper §3.1.1: "Packets in a given stream (at the same priority level)
    may be scheduled in arrival order (FCFS) or based on a service tag
    associated with each packet." The rings serve FCFS; this queue serves
    lowest-tag-first (e.g. earliest internal deadline of a striped or
    re-ordered source), at the cost of heap maintenance per operation and
    of needing producer/consumer synchronization (unlike the lock-free
    ring).

    The tag defaults to the frame's presentation timestamp.
    """

    def __init__(self, stream_id: str, capacity: int = 256) -> None:
        super().__init__(stream_id, capacity)
        self._heap: list[tuple[float, int, FrameDescriptor]] = []
        self._seq = 0

    @staticmethod
    def tag_of(desc: FrameDescriptor) -> float:
        return desc.frame.pts_us

    def enqueue(self, desc: FrameDescriptor, ops: OpCounter) -> None:
        if self.full:
            raise QueueFullError(f"stream {self.stream_id!r} tagged queue full")
        self._seq += 1
        heapq.heappush(self._heap, (self.tag_of(desc), self._seq, desc))
        # heap sift: ~log n compares and writes, plus lock acquire/release
        depth = max(1, len(self._heap).bit_length())
        ops.int_ops += depth + 2
        ops.mem_reads += depth
        ops.mem_writes += depth + 1
        ops.branches += depth
        self._tail += 1
        self.enqueued_total += 1

    def head(self, ops: OpCounter) -> Optional[FrameDescriptor]:
        ops.mem_reads += 1
        ops.branches += 1
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self, ops: OpCounter) -> FrameDescriptor:
        if not self._heap:
            raise IndexError(f"stream {self.stream_id!r} tagged queue empty")
        _tag, _seq, desc = heapq.heappop(self._heap)
        depth = max(1, len(self._heap).bit_length())
        ops.int_ops += depth
        ops.mem_reads += depth + 1
        ops.mem_writes += depth + 1
        ops.branches += depth
        self._head += 1
        self.dequeued_total += 1
        return desc

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity


class CircularBufferQueue(PacketQueue):
    """Ring of descriptors in pinned local memory."""

    def __init__(self, stream_id: str, capacity: int = 256) -> None:
        super().__init__(stream_id, capacity)
        self._slots: list[Optional[FrameDescriptor]] = [None] * capacity

    def _store(self, slot: int, desc: FrameDescriptor, ops: OpCounter) -> None:
        self._slots[slot] = desc
        ops.mem_writes += 1

    def _load(self, slot: int, ops: OpCounter) -> FrameDescriptor:
        ops.mem_reads += 1
        desc = self._slots[slot]
        assert desc is not None
        return desc


class HardwareQueueRing(PacketQueue):
    """Ring of descriptor handles in the MMIO register file.

    Each 32-bit register stores a handle; a side table in pinned memory maps
    handles to descriptors (the register itself is only 32 bits wide). The
    register accesses are the point: they cost fixed MMIO time, untouched by
    the data cache.
    """

    def __init__(
        self,
        stream_id: str,
        registers: HardwareQueueFile,
        base: int,
        capacity: int,
    ) -> None:
        if base < 0 or base + capacity > len(registers):
            raise ValueError(
                f"register window [{base}, {base + capacity}) exceeds the "
                f"{len(registers)}-register file"
            )
        super().__init__(stream_id, capacity)
        self.registers = registers
        self.base = base
        self._handles: dict[int, FrameDescriptor] = {}
        self._next_handle = 1  # 0 means empty register

    def _store(self, slot: int, desc: FrameDescriptor, ops: OpCounter) -> None:
        handle = self._next_handle
        self._next_handle = (self._next_handle + 1) & 0xFFFFFFFF or 1
        self._handles[handle] = desc
        self.registers.write(self.base + slot, handle, ops=ops)

    def _load(self, slot: int, ops: OpCounter) -> FrameDescriptor:
        handle = self.registers.read(self.base + slot, ops=ops)
        try:
            return self._handles[handle]
        except KeyError:
            raise RuntimeError(
                f"register {self.base + slot} holds unknown handle {handle}"
            ) from None

    def pop(self, ops: OpCounter) -> FrameDescriptor:
        desc = super().pop(ops)
        # Release the consumed slot's handle so the side table stays bounded
        # by the ring capacity (the embedded build reuses descriptor slots).
        slot = (self._head - 1) % self.capacity
        self._handles.pop(self.registers.inspect(self.base + slot), None)
        return desc
