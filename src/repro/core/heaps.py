"""Op-counted binary heap.

The embedded DWCS build keeps head-of-line packets in two heaps (deadlines
and loss-tolerances, Figure 4a). This heap charges every comparison and
swap to an :class:`~repro.fixedpoint.OpCounter` so the heap-based selection
structure has an honest O(log n) cost profile relative to the linear scan.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Optional, TypeVar

from repro.fixedpoint import OpCounter

__all__ = ["OpHeap"]

T = TypeVar("T")

# operation charges for one comparison / one swap inside the heap
_CMP_MEM_READS = 1
_CMP_INT_OPS = 1
_CMP_BRANCHES = 1
_SWAP_MEM_WRITES = 2


class OpHeap(Generic[T]):
    """Binary min-heap ordered by a caller-supplied comparator.

    ``compare(a, b, ops)`` returns <0/0/>0; it may itself charge ops (e.g.
    fraction comparisons through an arithmetic context).
    """

    def __init__(self, compare: Callable[[T, T, OpCounter], int]) -> None:
        self._compare = compare
        self._items: list[T] = []
        self._index: dict[int, int] = {}  # id(item) -> position

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: T) -> bool:
        return id(item) in self._index

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def peek_children(self) -> list[T]:
        """The root's children — the only candidates for the second minimum."""
        return self._items[1:3]

    def push(self, item: T, ops: OpCounter) -> None:
        if id(item) in self._index:
            raise ValueError("item already in heap")
        self._items.append(item)
        self._index[id(item)] = len(self._items) - 1
        ops.mem_writes += 1
        self._sift_up(len(self._items) - 1, ops)

    def pop_min(self, ops: OpCounter) -> T:
        if not self._items:
            raise IndexError("pop from empty heap")
        top = self._items[0]
        last = self._items.pop()
        del self._index[id(top)]
        ops.mem_reads += 1
        if self._items:
            self._items[0] = last
            self._index[id(last)] = 0
            ops.mem_writes += 1
            self._sift_down(0, ops)
        return top

    def remove(self, item: T, ops: OpCounter) -> None:
        """Remove an arbitrary item (stream went idle)."""
        pos = self._index.get(id(item))
        if pos is None:
            raise KeyError("item not in heap")
        last = self._items.pop()
        del self._index[id(item)]
        ops.mem_reads += 1
        if pos < len(self._items):
            self._items[pos] = last
            self._index[id(last)] = pos
            ops.mem_writes += 1
            self._sift_down(pos, ops)
            self._sift_up(self._index[id(last)], ops)

    def update(self, item: T, ops: OpCounter) -> None:
        """Restore heap order after *item*'s key changed in place."""
        pos = self._index.get(id(item))
        if pos is None:
            raise KeyError("item not in heap")
        self._sift_up(pos, ops)
        self._sift_down(self._index[id(item)], ops)

    # -- internals ---------------------------------------------------------
    def _cmp(self, a: T, b: T, ops: OpCounter) -> int:
        ops.mem_reads += _CMP_MEM_READS
        ops.int_ops += _CMP_INT_OPS
        ops.branches += _CMP_BRANCHES
        return self._compare(a, b, ops)

    def _swap(self, i: int, j: int, ops: OpCounter) -> None:
        items = self._items
        items[i], items[j] = items[j], items[i]
        self._index[id(items[i])] = i
        self._index[id(items[j])] = j
        ops.mem_writes += _SWAP_MEM_WRITES

    def _sift_up(self, pos: int, ops: OpCounter) -> None:
        while pos > 0:
            parent = (pos - 1) // 2
            if self._cmp(self._items[pos], self._items[parent], ops) < 0:
                self._swap(pos, parent, ops)
                pos = parent
            else:
                break

    def _sift_down(self, pos: int, ops: OpCounter) -> None:
        n = len(self._items)
        while True:
            left, right = 2 * pos + 1, 2 * pos + 2
            best = pos
            if left < n and self._cmp(self._items[left], self._items[best], ops) < 0:
                best = left
            if right < n and self._cmp(self._items[right], self._items[best], ops) < 0:
                best = right
            if best == pos:
                break
            self._swap(pos, best, ops)
            pos = best

    def items(self) -> list[T]:
        """Unordered view of heap contents (for verification)."""
        return list(self._items)

    def check_invariant(self, ops: Optional[OpCounter] = None) -> bool:
        """True when every parent orders before its children."""
        scratch = ops if ops is not None else OpCounter()
        for i in range(1, len(self._items)):
            parent = (i - 1) // 2
            if self._compare(self._items[i], self._items[parent], scratch) < 0:
                return False
        return True
