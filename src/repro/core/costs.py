"""Fixed-code-path operation charges for the embedded scheduler.

The reproduction executes the real DWCS logic in Python and tallies the
arithmetic it actually performs through the op-counted containers and
contexts. What Python cannot surface is the *straight-line machine code*
around that logic — loop preludes, register shuffling, driver entry/exit,
device programming. :class:`DWCSCostModel` supplies those charges as
documented constants.

Calibration: the constants were fitted against the paper's **setup-side**
numbers only (the i960's 66 MHz clock, the measured dispatch-only path of
≈30 µs/frame, the ≈20 µs software-FP penalty, the ≈14 µs data-cache
saving), then Tables 1–3 are *reproduced* by running the scheduler, not by
echoing table cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fixedpoint import OpCounter

__all__ = ["DWCSCostModel"]


@dataclass(frozen=True)
class DWCSCostModel:
    """Per-phase straight-line operation charges."""

    # -- scheduling decision --------------------------------------------------
    #: loop prelude, state load/store, priority encoding per decision
    decision_base_int_ops: int = 2570
    decision_base_branches: int = 400
    #: per stream examined during selection/miss scanning
    per_stream_int_ops: int = 25
    per_stream_branches: int = 6
    per_stream_mem_reads: int = 1
    #: per window-constraint adjustment applied
    adjust_int_ops: int = 30
    adjust_mem_reads: int = 2
    adjust_mem_writes: int = 2

    # -- dispatch (device programming of one frame) ------------------------------
    dispatch_int_ops: int = 1630
    dispatch_branches: int = 80
    dispatch_mem_reads: int = 7
    dispatch_mem_writes: int = 4
    #: arithmetic-context ``ratio`` evaluations in the dispatch path
    #: (per-stream rate bookkeeping) — this is what makes even the
    #: scheduler-bypassed path slower under software FP (Table 1's 34.6 vs
    #: 30.35 µs w/o-scheduler rows)
    dispatch_ratio_calls: int = 2

    # -- helpers ------------------------------------------------------------------
    def charge_decision_base(self, ops: OpCounter) -> None:
        ops.int_ops += self.decision_base_int_ops
        ops.branches += self.decision_base_branches

    def charge_stream_examined(self, ops: OpCounter) -> None:
        ops.int_ops += self.per_stream_int_ops
        ops.branches += self.per_stream_branches
        ops.mem_reads += self.per_stream_mem_reads

    def charge_streams_examined(self, ops: OpCounter, n: int) -> None:
        """Batched form of :meth:`charge_stream_examined` for *n* streams.

        The per-stream charge is a constant delta, so a cohort of *n*
        examinations is one multiply-accumulate instead of *n* calls —
        totals are identical by construction.
        """
        if n <= 0:
            return
        ops.int_ops += self.per_stream_int_ops * n
        ops.branches += self.per_stream_branches * n
        ops.mem_reads += self.per_stream_mem_reads * n

    def charge_adjustment(self, ops: OpCounter) -> None:
        ops.int_ops += self.adjust_int_ops
        ops.mem_reads += self.adjust_mem_reads
        ops.mem_writes += self.adjust_mem_writes

    def charge_adjustments(self, ops: OpCounter, n: int) -> None:
        """Batched form of :meth:`charge_adjustment` for *n* window updates."""
        if n <= 0:
            return
        ops.int_ops += self.adjust_int_ops * n
        ops.mem_reads += self.adjust_mem_reads * n
        ops.mem_writes += self.adjust_mem_writes * n

    def charge_dispatch(self, ops: OpCounter) -> None:
        ops.int_ops += self.dispatch_int_ops
        ops.branches += self.dispatch_branches
        ops.mem_reads += self.dispatch_mem_reads
        ops.mem_writes += self.dispatch_mem_writes
