"""DWCS stream attributes and per-stream scheduler state.

Each packet carries two attributes (paper §3.1.2):

* **Deadline** — the latest time the packet can commence service; successive
  packets in a stream have deadlines offset by a fixed *request period*.
* **Loss-tolerance** — x/y: at most x of every y consecutive packets may be
  lost or transmitted late. All packets of a stream share the same
  loss-tolerance at any given time.

:class:`StreamState` holds the *current* window constraint (x', y'), the
head-of-line deadline, and the service/drop/violation counters the
experiments report. The window-adjustment *rules* live in
:mod:`repro.core.dwcs` next to the precedence rules they pair with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fixedpoint import Fraction

__all__ = ["StreamSpec", "StreamState"]


@dataclass(frozen=True)
class StreamSpec:
    """Static QoS parameters of a stream, derived from application needs."""

    stream_id: str
    #: deadline offset between consecutive packets, µs (1/rate)
    period_us: float
    #: loss-tolerance numerator: packets that may be lost per window
    loss_x: int
    #: loss-tolerance denominator: the window length in packets
    loss_y: int
    #: drop late packets (lossy streams) instead of transmitting them late
    drop_late: bool = True

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError("period must be positive")
        if self.loss_y < 1:
            raise ValueError("loss-tolerance window y must be >= 1")
        if not 0 <= self.loss_x <= self.loss_y:
            raise ValueError("need 0 <= x <= y in loss-tolerance x/y")

    @property
    def loss_tolerance(self) -> Fraction:
        return Fraction(self.loss_x, self.loss_y)


class StreamState:
    """Mutable per-stream scheduler state."""

    __slots__ = (
        "spec",
        "x_cur",
        "y_cur",
        "deadline_us",
        "first_deadline_set",
        "serviced",
        "dropped",
        "sent_late",
        "violations",
        "window_resets",
        "created_seq",
    )

    def __init__(self, spec: StreamSpec, created_seq: int = 0) -> None:
        self.spec = spec
        #: current window numerator: losses still tolerable in this window
        self.x_cur = spec.loss_x
        #: current window denominator: packets remaining in this window
        self.y_cur = spec.loss_y
        #: head-of-line packet's deadline (absolute sim time, µs); set when
        #: the first packet arrives
        self.deadline_us: Optional[float] = None
        self.first_deadline_set = False
        self.serviced = 0
        self.dropped = 0
        self.sent_late = 0
        self.violations = 0
        self.window_resets = 0
        #: creation order, the final FCFS tie-break
        self.created_seq = created_seq

    @property
    def stream_id(self) -> str:
        return self.spec.stream_id

    @property
    def constraint(self) -> Fraction:
        """The current window-constraint x'/y' as a fraction."""
        # y_cur >= 1 is maintained by the adjustment rules; guard anyway so a
        # corrupted state fails loudly rather than dividing by zero.
        return Fraction(self.x_cur, max(1, self.y_cur))

    def set_first_deadline(self, now_us: float) -> None:
        """Anchor the stream's deadline sequence at first packet arrival."""
        if not self.first_deadline_set:
            self.deadline_us = now_us + self.spec.period_us
            self.first_deadline_set = True

    def advance_deadline(self) -> None:
        """Move to the next packet's deadline (fixed offset per the paper)."""
        if self.deadline_us is None:
            raise RuntimeError("deadline not anchored yet")
        self.deadline_us += self.spec.period_us

    def reset_window(self) -> None:
        self.x_cur = self.spec.loss_x
        self.y_cur = self.spec.loss_y
        self.window_resets += 1

    # -- checkpoint / restore (HA plane) -------------------------------------
    #: fields mirrored to host memory by the checkpointing plane; spec and
    #: created_seq are carried separately (spec is immutable, created_seq is
    #: local to the adopting scheduler's FCFS order)
    CHECKPOINT_FIELDS = (
        "x_cur",
        "y_cur",
        "deadline_us",
        "first_deadline_set",
        "serviced",
        "dropped",
        "sent_late",
        "violations",
        "window_resets",
    )

    def checkpoint(self) -> dict:
        """Snapshot the mutable window/tally state (plain dict, copyable)."""
        return {name: getattr(self, name) for name in self.CHECKPOINT_FIELDS}

    def restore(self, snapshot: dict) -> None:
        """Overwrite the mutable state from a :meth:`checkpoint` snapshot."""
        for name in self.CHECKPOINT_FIELDS:
            setattr(self, name, snapshot[name])

    def __repr__(self) -> str:
        return (
            f"<StreamState {self.stream_id!r} W'={self.x_cur}/{self.y_cur} "
            f"dl={self.deadline_us} svc={self.serviced} drop={self.dropped} "
            f"viol={self.violations}>"
        )
