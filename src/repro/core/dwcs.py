"""Dynamic Window-Constrained Scheduling (DWCS).

The algorithm of West/Schwan (ICMCS'99, GIT-CC-98-29) as embedded by the
paper on the i960 RD: per-stream circular buffers hold frame descriptors;
head-of-line packets are ordered by the precedence rules in
:mod:`repro.core.selection`; servicing and deadline misses adjust each
stream's current window constraint (x', y'):

**Serviced before its deadline** (stream *i*)::

    if x' > 0:            # losses still tolerable
        y' -= 1
        if x' >= y':      # the rest of the window may all be lost
            (x', y') = (x, y)
    elif y' > 0:          # zero tolerance: every remaining packet must go
        y' -= 1
        if y' == 0:
            (x', y') = (x, y)

**Missed its deadline** (stream *j*; packet dropped if the *current*
window still tolerates loss — x' > 0 and drop_late — else transmitted
late)::

    if x' > 0:
        x' -= 1; y' -= 1
        if x' >= y':
            (x', y') = (x, y)
    else:                 # constraint violation: the window is blown
        violations += 1
        (x', y') = (x, y) # restart counting over a fresh window

Deadlines: packet *k* of a stream carries ``anchor + (k+1)·T`` where *T* is
the stream's request period, fixed at enqueue ("each successive packet in a
stream has a deadline that is offset by a fixed amount from its
predecessor").

Pacing: by default the scheduler is **non-work-conserving** — a packet is
not eligible before its release time ``deadline − T`` — which is what makes
a backlogged stream settle at its natural bandwidth (Figures 7/9) instead
of bursting at wire speed. The microbenchmarks (Tables 1–3) set
``work_conserving=True`` to drain a pre-filled buffer back-to-back, exactly
as the paper's measurement loop does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fixedpoint import ArithmeticContext, FixedPointContext, OpCounter
from repro.media.frames import FrameDescriptor, MediaFrame

from .attributes import StreamSpec, StreamState
from .costs import DWCSCostModel
from .queues import CircularBufferQueue, PacketQueue
from .selection import DualHeaps, Entry, LinearScan, SelectionStructure, compare_entries

__all__ = ["DWCSScheduler", "Decision", "SchedulerStats"]

QueueFactory = Callable[[str], PacketQueue]
SelectionFactory = Callable[[ArithmeticContext], SelectionStructure]


@dataclass
class Decision:
    """Outcome of one scheduling cycle."""

    #: descriptor chosen for transmission (None if nothing eligible)
    serviced: Optional[FrameDescriptor]
    #: the serviced packet had already missed its deadline (sent late)
    late: bool
    #: packets dropped during this cycle's miss processing
    dropped: list[FrameDescriptor]
    #: operations charged for this cycle (decision only, not dispatch)
    ops: OpCounter
    #: when nothing is eligible: earliest release time among heads (µs)
    idle_until: Optional[float] = None


@dataclass
class SchedulerStats:
    """Aggregate counters across all streams."""

    decisions: int = 0
    serviced: int = 0
    dropped: int = 0
    sent_late: int = 0
    violations: int = 0


class DWCSScheduler:
    """The DWCS packet scheduler core (platform-independent).

    Parameters
    ----------
    ctx:
        Arithmetic context — fixed-point or software-FP build.
    costs:
        Straight-line code charges (see :mod:`repro.core.costs`).
    selection_factory:
        Head-of-line selection structure (dual heaps by default).
    queue_factory:
        Per-stream ring constructor (pinned-memory circular buffer by
        default; the hardware-queue build passes a register-file ring).
    work_conserving:
        See module docstring.
    """

    def __init__(
        self,
        ctx: Optional[ArithmeticContext] = None,
        costs: Optional[DWCSCostModel] = None,
        selection_factory: SelectionFactory = DualHeaps,
        queue_factory: Optional[QueueFactory] = None,
        work_conserving: bool = False,
        miss_scan: str = "descriptor-loop",
    ) -> None:
        if miss_scan not in ("descriptor-loop", "structure"):
            raise ValueError("miss_scan must be 'descriptor-loop' or 'structure'")
        self.ctx = ctx if ctx is not None else FixedPointContext()
        self.costs = costs if costs is not None else DWCSCostModel()
        self.selection = selection_factory(self.ctx)
        self.queue_factory: QueueFactory = (
            queue_factory if queue_factory is not None else CircularBufferQueue
        )
        self.work_conserving = work_conserving
        #: 'descriptor-loop' walks every stream each cycle, as the paper's
        #: embedded code does ("the scheduler loops through the frame
        #: descriptors"); 'structure' asks the selection structure for the
        #: late cohort — the scalable build (O(k log n) with dual heaps).
        self.miss_scan = miss_scan
        #: optional :class:`repro.sim.Tracer` receiving 'dwcs' events
        #: (decision / drop / late / violation), zero-cost when unset
        self.tracer = None
        # Unify the ledgers: all context arithmetic charges to the
        # scheduler's counter so per-cycle deltas capture everything.
        self.ctx.ops = OpCounter()
        self.streams: dict[str, StreamState] = {}
        self.queues: dict[str, PacketQueue] = {}
        self._entries: dict[str, Entry] = {}
        self._anchor: dict[str, float] = {}
        self._created = 0
        #: lifetime operation ledger (all cycles)
        self.ops = self.ctx.ops
        self.stats = SchedulerStats()
        #: per-dispatch op tally of the ratio-call loop, computed lazily on
        #: the first dispatch (see :meth:`dispatch_ops`)
        self._dispatch_ratio_delta: Optional[OpCounter] = None

    # -- stream management -----------------------------------------------------
    def add_stream(self, spec: StreamSpec) -> StreamState:
        if spec.stream_id in self.streams:
            raise ValueError(f"duplicate stream {spec.stream_id!r}")
        state = StreamState(spec, created_seq=self._created)
        self._created += 1
        self.streams[spec.stream_id] = state
        self.queues[spec.stream_id] = self.queue_factory(spec.stream_id)
        return state

    def remove_stream(self, stream_id: str) -> None:
        """Tear down an (empty) stream."""
        if len(self.queues[stream_id]):
            raise RuntimeError(f"stream {stream_id!r} still has queued packets")
        entry = self._entries.pop(stream_id, None)
        if entry is not None:  # pragma: no cover - empty streams have no entry
            self.selection.remove(entry, self.ops)
        del self.streams[stream_id]
        del self.queues[stream_id]
        self._anchor.pop(stream_id, None)

    # -- checkpoint / migration (HA plane) --------------------------------------
    def export_stream(self, stream_id: str) -> dict:
        """Portable snapshot of one stream's scheduling state.

        Carries everything :meth:`adopt_stream` needs to continue the
        stream's window accounting and deadline sequence on another
        scheduler instance: the immutable spec, the mutable
        :meth:`~repro.core.attributes.StreamState.checkpoint`, the deadline
        anchor, and the count of deadlines already assigned.
        """
        state = self.streams[stream_id]
        return {
            "spec": state.spec,
            "state": state.checkpoint(),
            "anchor_us": self._anchor.get(stream_id),
            "enqueued_total": self.queues[stream_id].enqueued_total,
        }

    def adopt_stream(self, snapshot: dict) -> StreamState:
        """Admit a migrated stream, continuing its exported state.

        The stream starts with an empty queue (in-flight frames died with
        the failed card); the restored window constraint, tallies, and
        deadline sequence mean the next enqueued frame carries deadline
        ``anchor + (enqueued_total+1)·T`` — exactly the deadline it would
        have carried on the original card.
        """
        spec: StreamSpec = snapshot["spec"]
        state = self.add_stream(spec)
        state.restore(snapshot["state"])
        if snapshot["anchor_us"] is not None:
            self._anchor[spec.stream_id] = snapshot["anchor_us"]
        self.queues[spec.stream_id].enqueued_total = snapshot["enqueued_total"]
        return state

    @property
    def backlog(self) -> int:
        """Total packets queued across streams."""
        total = 0
        for q in self.queues.values():
            total += len(q)
        return total

    def queue_depth(self, stream_id: str) -> int:
        return len(self.queues[stream_id])

    # -- producer side --------------------------------------------------------------
    def enqueue(self, frame: MediaFrame, now_us: float, address: int = 0) -> FrameDescriptor:
        """Inject a frame; assigns the packet deadline and updates heads."""
        state = self.streams.get(frame.stream_id)
        if state is None:
            raise KeyError(f"unknown stream {frame.stream_id!r}")
        queue = self.queues[frame.stream_id]
        anchor = self._anchor.setdefault(frame.stream_id, now_us)
        k = queue.enqueued_total  # packets already assigned deadlines
        desc = FrameDescriptor(
            frame=frame,
            address=address,
            deadline_us=anchor + (k + 1) * state.spec.period_us,
            enqueued_at_us=now_us,
        )
        was_empty = queue.empty
        queue.enqueue(desc, self.ops)
        if was_empty:
            self._promote_head(state, queue)
        return desc

    # -- the scheduling cycle ----------------------------------------------------------
    def schedule(self, now_us: float) -> Decision:
        """Run one full DWCS cycle: miss processing, selection, adjustment."""
        ops_before = self.ops.copy()
        self.costs.charge_decision_base(self.ops)
        self.stats.decisions += 1

        dropped = self._process_misses(now_us)
        entry = self._select_eligible(now_us)

        if entry is None:
            idle_until = self._earliest_release() if not self.work_conserving else None
            return Decision(
                serviced=None,
                late=False,
                dropped=dropped,
                ops=self.ops.snapshot_delta(ops_before),
                idle_until=idle_until,
            )

        state = self.streams[entry.stream_id]
        queue = self.queues[entry.stream_id]
        desc = queue.pop(self.ops)
        late = now_us > desc.deadline_us
        if self.tracer is not None and self.tracer.wants("dwcs"):
            self.tracer.emit(
                "dwcs",
                "late" if late else "decision",
                stream=desc.stream_id,
                seq=desc.frame.seqno,
                deadline=desc.deadline_us,
            )
        if late:
            # Miss processing already adjusted the window when the deadline
            # passed; the packet simply goes out late now.
            state.sent_late += 1
            self.stats.sent_late += 1
        else:
            self.costs.charge_adjustment(self.ops)
            self._adjust_serviced(state)
            state.serviced += 1
            self.stats.serviced += 1
        self._refresh_head(state, queue, entry)
        return Decision(
            serviced=desc,
            late=late,
            dropped=dropped,
            ops=self.ops.snapshot_delta(ops_before),
        )

    def dispatch_ops(self) -> OpCounter:
        """Charge and return the device-programming cost of one dispatch.

        Includes the arithmetic-context ``ratio`` evaluations of the
        dispatch path's rate bookkeeping — the reason even the
        scheduler-bypassed path is slower under software FP (Table 1).
        """
        before = self.ops.copy()
        self.costs.charge_dispatch(self.ops)
        # The ratio calls exist only for their op tally (the computed value
        # is discarded), and the tally per call is context-dependent but
        # constant — so run the loop once against a scratch ledger and
        # replay the recorded delta on every later dispatch.
        delta = self._dispatch_ratio_delta
        if delta is None:
            scratch = OpCounter()
            saved = self.ctx.ops
            self.ctx.ops = scratch
            try:
                for _ in range(self.costs.dispatch_ratio_calls):
                    self.ctx.ratio(1, 2)
            finally:
                self.ctx.ops = saved
            delta = self._dispatch_ratio_delta = scratch
        self.ops.add(delta)
        return self.ops.snapshot_delta(before)

    # -- window adjustments ------------------------------------------------------
    def _adjust_serviced(self, state: StreamState) -> None:
        if state.x_cur > 0:
            state.y_cur -= 1
            if state.x_cur >= state.y_cur:
                state.reset_window()
        elif state.y_cur > 0:
            state.y_cur -= 1
            if state.y_cur == 0:
                state.reset_window()

    def _adjust_missed(self, state: StreamState) -> None:
        if state.x_cur > 0:
            state.x_cur -= 1
            state.y_cur -= 1
            if state.x_cur >= state.y_cur:
                state.reset_window()
        else:
            # x' == 0: this miss blows the current window — a violation.
            # The window restarts (the constraint over the blown window can
            # no longer be met; counting continues over a fresh window).
            state.violations += 1
            self.stats.violations += 1
            state.reset_window()
            if self.tracer is not None and self.tracer.wants("dwcs"):
                self.tracer.emit(
                    "dwcs",
                    "violation",
                    stream=state.stream_id,
                    total=state.violations,
                )

    # -- miss processing ------------------------------------------------------------
    def _process_misses(self, now_us: float) -> list[FrameDescriptor]:
        dropped: list[FrameDescriptor] = []
        if self.miss_scan == "structure":
            candidates = [
                (e.stream_id, e) for e in self.selection.late_entries(now_us, self.ops)
            ]
        else:
            candidates = list(self._entries.items())
        # The examination charge is a constant per-stream delta: apply the
        # whole cohort's worth in one multiply-accumulate up front, and
        # tally the (equally constant) window-adjustment charges to apply
        # the same way at the end — in a finally, so a scan that dies
        # mid-loop still charges what it adjusted, exactly as the old
        # per-call form did. Totals are identical to that form — the op
        # ledger only ever reports per-cycle sums.
        self.costs.charge_streams_examined(self.ops, len(candidates))
        n_adjusted = 0
        try:
            for stream_id, entry in candidates:
                state = self.streams[stream_id]
                queue = self.queues[stream_id]
                changed = False
                while True:
                    head = queue.head(self.ops)
                    if head is None:
                        break
                    if head.miss_handled or head.deadline_us >= now_us:
                        break
                    changed = True
                    # A late packet may be dropped only while the *current*
                    # window still tolerates loss (x' > 0); with x' == 0 the
                    # packet must be transmitted late (and the miss is a
                    # violation). Evaluate before the adjustment consumes x'.
                    droppable = state.spec.drop_late and state.x_cur > 0
                    n_adjusted += 1
                    self._adjust_missed(state)
                    if droppable:
                        queue.pop(self.ops)
                        state.dropped += 1
                        self.stats.dropped += 1
                        dropped.append(head)
                        if self.tracer is not None and self.tracer.wants("dwcs"):
                            self.tracer.emit(
                                "dwcs", "drop",
                                stream=head.stream_id, seq=head.frame.seqno,
                                deadline=head.deadline_us,
                            )
                        # loop: the next head may be late too
                    else:
                        # transmitted late: keep at head, count the miss once
                        head.miss_handled = True
                        break
                if changed:
                    # head and/or window constraint moved: restore order
                    self._refresh_head(state, queue, entry, may_be_same=True)
        finally:
            self.costs.charge_adjustments(self.ops, n_adjusted)
        return dropped

    # -- selection ---------------------------------------------------------------------
    def _eligible(self, entry: Entry, now_us: float) -> bool:
        if self.work_conserving:
            return True
        state = self.streams[entry.stream_id]
        release = (state.deadline_us or 0.0) - state.spec.period_us
        return now_us >= release

    def _select_eligible(self, now_us: float) -> Optional[Entry]:
        if self.miss_scan == "descriptor-loop":
            # the embedded build re-encodes every stream's priority per
            # cycle while walking the descriptors — a constant charge per
            # stream, applied for the whole cohort at once
            self.costs.charge_streams_examined(self.ops, len(self._entries))
        best = self.selection.select(self.ops)
        if best is None:
            return None
        if self._eligible(best, now_us):
            return best
        # The EDF-best head is not released yet; fall back to scanning for
        # any eligible entry (rare: only when periods differ widely).
        candidates = [
            e for e in self._entries.values() if self._eligible(e, now_us)
        ]
        if not candidates:
            return None
        chosen = candidates[0]
        for other in candidates[1:]:
            if compare_entries(other, chosen, self.ctx, self.ops) < 0:
                chosen = other
        return chosen

    def _earliest_release(self) -> Optional[float]:
        releases = [
            (self.streams[sid].deadline_us or 0.0) - self.streams[sid].spec.period_us
            for sid in self._entries
        ]
        return min(releases) if releases else None

    # -- head/entry maintenance -------------------------------------------------------
    def _promote_head(self, state: StreamState, queue: PacketQueue) -> None:
        head = queue.head(self.ops)
        assert head is not None
        state.deadline_us = head.deadline_us
        entry = Entry(state, head_enqueued_at=head.enqueued_at_us)
        self._entries[state.stream_id] = entry
        self.selection.add(entry, self.ops)

    def _refresh_head(
        self, state: StreamState, queue: PacketQueue, entry: Entry, may_be_same: bool = False
    ) -> None:
        head = queue.head(self.ops)
        if head is None:
            if state.stream_id in self._entries:
                self.selection.remove(entry, self.ops)
                del self._entries[state.stream_id]
            return
        if may_be_same and head.deadline_us == state.deadline_us:
            # head unchanged; constraint may still have moved — re-sift
            self.selection.reorder(entry, self.ops)
            return
        state.deadline_us = head.deadline_us
        entry.head_enqueued_at = head.enqueued_at_us
        self.selection.reorder(entry, self.ops)

    def __repr__(self) -> str:
        return (
            f"<DWCSScheduler {self.ctx.label} {self.selection.name} "
            f"streams={len(self.streams)} backlog={self.backlog}>"
        )
