"""The paper's primary contribution: the DWCS media scheduler.

Algorithm (:mod:`repro.core.dwcs`), stream attributes, op-counted schedule
representations (per-stream rings in pinned memory or MMIO registers, dual
heaps vs linear scan), the embedded cost model, and the engines that drive
the scheduler for microbenchmarks and live streaming.
"""

from .admission import AdmissionController, AdmissionDecision, mandatory_utilization
from .attributes import StreamSpec, StreamState
from .calendar import CalendarQueue, SortedList
from .costs import DWCSCostModel
from .dispatch import AsyncDispatcher, CoupledDispatcher
from .dwcs import Decision, DWCSScheduler, SchedulerStats
from .engine import MicrobenchEngine, MicrobenchResult, StreamingEngine
from .heaps import OpHeap
from .queues import (
    CircularBufferQueue,
    HardwareQueueRing,
    PacketQueue,
    QueueFullError,
    TaggedQueue,
)
from .selection import DualHeaps, Entry, LinearScan, SelectionStructure, compare_entries

__all__ = [
    "StreamSpec",
    "StreamState",
    "DWCSCostModel",
    "DWCSScheduler",
    "Decision",
    "SchedulerStats",
    "MicrobenchEngine",
    "MicrobenchResult",
    "StreamingEngine",
    "OpHeap",
    "PacketQueue",
    "CircularBufferQueue",
    "HardwareQueueRing",
    "TaggedQueue",
    "QueueFullError",
    "SelectionStructure",
    "LinearScan",
    "DualHeaps",
    "SortedList",
    "CalendarQueue",
    "Entry",
    "compare_entries",
    "AdmissionController",
    "AdmissionDecision",
    "mandatory_utilization",
    "CoupledDispatcher",
    "AsyncDispatcher",
]
