"""Admission control for window-constrained streams.

The paper positions "admission control and online request scheduling" as
the software levers for server scalability, and requires the server to
process rising stream counts "with a pre-negotiated bound on service
degradation". This module provides the standard DWCS-style feasibility
test: for unit-capacity service, a set of streams with periods T_i,
per-packet service times C_i, and loss-tolerances x_i/y_i is schedulable
with no violations when the *mandatory* utilization

    U = Σ (1 − x_i/y_i) · C_i / T_i

does not exceed the configured bound (West & Poellabauer prove U ≤ 1 is
exact for unit-time packets; a safety margin covers scheduling overhead
and non-unit packets).

:class:`AdmissionController` tracks admitted streams and evaluates
candidate requests; it also exposes the utilization ledger so experiments
can sweep stream counts against the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .attributes import StreamSpec

__all__ = ["AdmissionController", "AdmissionDecision", "mandatory_utilization"]


def mandatory_utilization(spec: StreamSpec, service_time_us: float) -> float:
    """The stream's guaranteed-service share: (1 − x/y) · C/T."""
    if service_time_us <= 0:
        raise ValueError("service time must be positive")
    mandatory_fraction = 1.0 - spec.loss_x / spec.loss_y
    return mandatory_fraction * service_time_us / spec.period_us


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission test."""

    admitted: bool
    #: utilization the stream set would have including the candidate
    projected_utilization: float
    #: the configured admission bound
    bound: float
    reason: str = ""


class AdmissionController:
    """Utilization-based admission for one scheduler's stream set."""

    def __init__(self, utilization_bound: float = 0.85) -> None:
        if not 0.0 < utilization_bound <= 1.0:
            raise ValueError("bound must be in (0, 1]")
        self.utilization_bound = utilization_bound
        self._admitted: dict[str, float] = {}
        #: streams shed under failure/overload, FIFO by suspension order —
        #: their shares are off the ledger until resumed
        self._suspended: dict[str, float] = {}

    @property
    def utilization(self) -> float:
        """Mandatory utilization of the admitted set."""
        return sum(self._admitted.values())

    @property
    def admitted_streams(self) -> list[str]:
        return sorted(self._admitted)

    def evaluate(self, spec: StreamSpec, service_time_us: float) -> AdmissionDecision:
        """Test a candidate without admitting it."""
        share = mandatory_utilization(spec, service_time_us)
        projected = self.utilization + share
        if spec.stream_id in self._admitted or spec.stream_id in self._suspended:
            return AdmissionDecision(
                admitted=False,
                projected_utilization=self.utilization,
                bound=self.utilization_bound,
                reason=f"stream {spec.stream_id!r} already admitted",
            )
        if projected > self.utilization_bound:
            return AdmissionDecision(
                admitted=False,
                projected_utilization=projected,
                bound=self.utilization_bound,
                reason=(
                    f"mandatory utilization {projected:.3f} would exceed "
                    f"bound {self.utilization_bound:.3f}"
                ),
            )
        return AdmissionDecision(
            admitted=True,
            projected_utilization=projected,
            bound=self.utilization_bound,
        )

    def admit(self, spec: StreamSpec, service_time_us: float) -> AdmissionDecision:
        """Test and, on success, record the stream."""
        decision = self.evaluate(spec, service_time_us)
        if decision.admitted:
            self._admitted[spec.stream_id] = mandatory_utilization(
                spec, service_time_us
            )
        return decision

    def release(self, stream_id: str) -> None:
        """Return a departed stream's share."""
        if stream_id in self._suspended:
            del self._suspended[stream_id]
            return
        if stream_id not in self._admitted:
            raise KeyError(f"stream {stream_id!r} not admitted")
        del self._admitted[stream_id]

    # -- graceful degradation ------------------------------------------------
    @property
    def suspended_streams(self) -> list[str]:
        return sorted(self._suspended)

    def suspend(self, stream_id: str) -> None:
        """Shed an admitted stream (NI failure, sustained overload).

        Its share leaves the ledger but is remembered, so the stream can be
        re-admitted ahead of newcomers once capacity returns.
        """
        if stream_id not in self._admitted:
            raise KeyError(f"stream {stream_id!r} not admitted")
        self._suspended[stream_id] = self._admitted.pop(stream_id)

    def resume(self, stream_id: str) -> bool:
        """Re-admit one suspended stream if its share fits the bound."""
        if stream_id not in self._suspended:
            raise KeyError(f"stream {stream_id!r} not suspended")
        share = self._suspended[stream_id]
        if self.utilization + share > self.utilization_bound:
            return False
        self._admitted[stream_id] = self._suspended.pop(stream_id)
        return True

    def resume_all(self) -> list[str]:
        """Re-admit suspended streams FIFO while headroom allows.

        Returns the stream ids actually re-admitted; any remainder stays
        suspended (degraded service, not dropped state).
        """
        resumed = []
        for stream_id in list(self._suspended):
            share = self._suspended[stream_id]
            if self.utilization + share > self.utilization_bound:
                continue
            self._admitted[stream_id] = self._suspended.pop(stream_id)
            resumed.append(stream_id)
        return resumed

    def headroom(self) -> float:
        """Remaining admissible mandatory utilization."""
        return max(0.0, self.utilization_bound - self.utilization)

    def __repr__(self) -> str:
        return (
            f"<AdmissionController {self.utilization:.3f}/{self.utilization_bound} "
            f"streams={len(self._admitted)}>"
        )
