"""Per-node partitions across the SAN seam: the cluster-scale workload.

The scale-out shape the ROADMAP's item 4 calls for: one front-door
partition plus N node partitions, each node a full Figure-9 NI streaming
cell (server node, switch, NI scheduler card, MPEG clients, and its own
web load) running in its own kernel. The only coupling is control
traffic across the SAN seam — admission waves out, acks and periodic
bandwidth reports back — and every crossing pays at least the SAN's
declared minimum (:meth:`repro.server.cluster.Cluster.min_cross_latency_us`),
so the seam lookahead bounds the coordinator's windows.

Window economics: the front door only sends at its scheduled wave times
and each node only *initiates* sends at its scheduled report times, so
both promise far past the classic next-event-plus-lookahead bound. A
100-simulated-second run closes in a few dozen windows instead of the
~10^5 a raw 560 µs lookahead would force; the reactive acks are covered
by the coordinator's pending-message cap. That is what makes the
partitioned run *faster* than serial, not just equal to it.

The experiment wrapper that turns the merged fragments into an
:class:`~repro.experiments.report.ExperimentResult` lives in
:mod:`repro.experiments.pdescluster`.
"""

from __future__ import annotations

from typing import Optional

from .partition import CrossMessage, PartitionHarness, PartitionSpec

__all__ = [
    "SAN_LOOKAHEAD_US",
    "FRONTDOOR",
    "REPORT_PERIOD_US",
    "INITIAL_WAVE_US",
    "LATE_WAVE_FRAC",
    "FrontdoorHarness",
    "NodeHarness",
    "build_frontdoor",
    "build_node",
    "pdescluster_specs",
    "run_pdescluster",
]

#: SAN seam lookahead at default model parameters: the I960 NI stack's
#: per-packet encapsulation (550 µs) plus the SAN switch's store-and-
#: forward latency (10 µs). Pinned by a test against
#: ``Cluster.min_cross_latency_us()`` so it cannot drift from the model.
SAN_LOOKAHEAD_US = 560.0

#: partition index of the front door; nodes are 1..N
FRONTDOOR = 0

#: nodes report delivered-byte counters to the front door at this period
REPORT_PERIOD_US = 10_000_000.0

#: first admission wave (0.5 simulated seconds in)
INITIAL_WAVE_US = 500_000.0

#: the late wave lands mid-run, same fraction the cluster experiment uses
LATE_WAVE_FRAC = 0.55

#: per-node web-load levels cycle through this sequence (node 1 takes the
#: first entry), mixing light and heavy partitions like a real cluster
NODE_LEVELS = ("none", "60%", "45%", "none")


class FrontdoorHarness(PartitionHarness):
    """The admission front door: sends waves, collects acks and reports.

    Sends *only* at the wave times fixed in its config, so its EOT
    promise is the next pending wave — windows between waves are bounded
    by the nodes' report schedule, not by the front door.
    """

    def build(self) -> None:
        cfg = self.spec.config
        self.waves: list[dict] = cfg["waves"]
        self._next_wave = 0
        self.admits_sent = 0
        self.acks: list[list] = []  # [stream_id, node, ack_time_us]
        self.last_report: dict[int, dict] = {}
        self.reports_received = 0
        for wave in self.waves:
            self.env.schedule_callback(
                wave["at"] - self.env.now, self._fire_wave, name="frontdoor.wave"
            )

    def _fire_wave(self) -> None:
        wave = self.waves[self._next_wave]
        self._next_wave += 1
        for admit in wave["admits"]:
            payload = dict(admit)
            node = payload.pop("node")
            self.send(node, "admit", payload)
            self.admits_sent += 1

    def eot(self) -> float:
        if self._next_wave >= len(self.waves):
            return float("inf")
        return self.waves[self._next_wave]["at"] + self.lookahead_us

    def on_message(self, msg: CrossMessage) -> None:
        if msg.kind == "ack":
            self.acks.append(
                [msg.payload["stream_id"], msg.src, self.env.now]
            )
        elif msg.kind == "report":
            self.reports_received += 1
            self.last_report[msg.src] = dict(msg.payload)

    def finish(self) -> dict:
        return {
            "admits_sent": self.admits_sent,
            "acks": sorted(self.acks),
            "reports_received": self.reports_received,
            "last_report": {
                str(node): self.last_report[node]
                for node in sorted(self.last_report)
            },
        }


class NodeHarness(PartitionHarness):
    """One cluster node: a full NI streaming cell plus its web load.

    Streams are *not* pre-built — they arrive as ``admit`` messages from
    the front door, exercising mid-run admission across the seam exactly
    like the cluster plane's late wave does within one kernel.
    """

    def build(self) -> None:
        # deferred so importing this module (e.g. to read the seam
        # constants) does not drag the whole experiment stack in
        from repro.core.admission import AdmissionController
        from repro.hw.ethernet import EthernetSwitch
        from repro.metrics import Perfmeter
        from repro.server.node import ServerNode
        from repro.server.streaming import NIStreamingService
        from repro.sim import RandomStreams, S
        from repro.workload import ApacheServer, Httperf

        from repro.experiments.calibration import (
            APACHE_HEAVY_TAIL,
            LOAD_PROFILES,
        )

        cfg = self.spec.config
        self.duration_us = float(cfg["duration_us"])
        self.report_period_us = float(cfg["report_period_us"])
        seed = int(cfg["seed"])
        level = cfg["level"]

        self.node = ServerNode(self.env, n_cpus=1, n_pci_segments=2)
        self.switch = EthernetSwitch(self.env)
        self.service = NIStreamingService(
            self.env,
            self.node,
            self.switch,
            scheduler_segment=0,
            admission=AdmissionController(),
        )
        self.meter = Perfmeter(self.env, self.node.host_os, period_us=1 * S)
        self.streams: list[str] = []

        profile = LOAD_PROFILES[level]
        if profile:
            web = ApacheServer(
                self.env,
                self.node.host_os,
                rng=RandomStreams(seed + 100),
                **APACHE_HEAVY_TAIL,
            )
            capacity = (
                self.node.host_os.n_cpus * 1e6 / web.effective_mean_service_us
            )
            Httperf(
                self.env,
                web,
                rate_per_s=0.001,
                rate_profile=[(t, frac * capacity) for t, frac in profile],
                total_calls=10**9,
                rng=RandomStreams(seed + 200),
            )

        self._next_report = self.report_period_us
        if self._next_report < self.duration_us:
            self.env.schedule_callback(
                self._next_report - self.env.now, self._report, name="node.report"
            )

    def _report(self) -> None:
        frames = sum(
            self.service.reception(sid).frames_received for sid in self.streams
        )
        bytes_ = sum(
            self.service.reception(sid).bytes_received for sid in self.streams
        )
        self.send(
            FRONTDOOR,
            "report",
            {"streams": len(self.streams), "frames": frames, "bytes": bytes_},
        )
        self._next_report += self.report_period_us
        if self._next_report < self.duration_us:
            self.env.schedule_callback(
                self.report_period_us, self._report, name="node.report"
            )
        else:
            self._next_report = float("inf")

    def eot(self) -> float:
        """Promise: this node only *initiates* sends at report times.

        Acks are reactive (sent while processing an inbound admit) and
        are covered by the coordinator's pending-message cap.
        """
        return self._next_report + self.lookahead_us

    def on_message(self, msg: CrossMessage) -> None:
        from repro.core.attributes import StreamSpec
        from repro.experiments.calibration import (
            NI_INJECT_GAP_US,
            PREBUFFER_FRAMES,
            figure_mpeg_file,
        )
        from repro.experiments.figures import STREAM_SERVICE_TIME_US

        p = msg.payload
        sid = p["stream_id"]
        spec = StreamSpec(
            sid,
            period_us=p["period_us"],
            loss_x=p["loss_x"],
            loss_y=p["loss_y"],
        )
        self.service.attach_client(f"client_{sid}")
        self.service.open_stream(
            spec, f"client_{sid}", service_time_us=STREAM_SERVICE_TIME_US
        )
        self.service.start_producer(
            figure_mpeg_file(sid, seed=p["file_seed"], n_frames=p["n_frames"]),
            inject_gap_us=NI_INJECT_GAP_US,
            prebuffer_frames=PREBUFFER_FRAMES,
        )
        self.streams.append(sid)
        self.send(FRONTDOOR, "ack", {"stream_id": sid})

    def finish(self) -> dict:
        per_stream = {}
        for sid in sorted(self.streams):
            rec = self.service.reception(sid)
            per_stream[sid] = {
                "frames_received": rec.frames_received,
                "bytes_received": rec.bytes_received,
                "settled_bps": rec.mean_bandwidth_bps(
                    0.7 * self.duration_us, 0.95 * self.duration_us
                ),
            }
        return {
            "level": self.spec.config["level"],
            "cpu_util_pct": self.meter.average(),
            "streams": per_stream,
        }


def build_frontdoor(spec: PartitionSpec) -> FrontdoorHarness:
    return FrontdoorHarness(spec)


def build_node(spec: PartitionSpec) -> NodeHarness:
    return NodeHarness(spec)


def pdescluster_specs(
    duration_us: float,
    seed: int = 42,
    n_nodes: int = 4,
    lookahead_us: float = SAN_LOOKAHEAD_US,
) -> list[PartitionSpec]:
    """Front door + N node partitions, admission waves fixed up front.

    Two Figure-9-shaped streams per node in the initial wave, one more
    per node in the late wave — the same population shape the cluster
    experiment admits, here crossing a partition seam.
    """
    if n_nodes < 1:
        raise ValueError("pdescluster needs at least one node partition")
    n_frames = max(64, int(duration_us / 280_000.0) + 64)

    def admit(node: int, sid: str, i: int) -> dict:
        return {
            "node": node,
            "stream_id": sid,
            "period_us": 333_333.0,
            "loss_x": 1,
            "loss_y": 2,
            "file_seed": seed + 17 * node + i,
            "n_frames": n_frames,
        }

    waves = [
        {
            "at": INITIAL_WAVE_US,
            "admits": [
                admit(node, f"n{node}-s{j}", j)
                for node in range(1, n_nodes + 1)
                for j in (1, 2)
            ],
        },
        {
            "at": LATE_WAVE_FRAC * duration_us,
            "admits": [
                admit(node, f"n{node}-late", 3) for node in range(1, n_nodes + 1)
            ],
        },
    ]
    specs = [
        PartitionSpec(
            index=FRONTDOOR,
            name="frontdoor",
            builder="repro.pdes.cluster:build_frontdoor",
            lookahead_us=lookahead_us,
            config={"waves": waves},
        )
    ]
    for node in range(1, n_nodes + 1):
        specs.append(
            PartitionSpec(
                index=node,
                name=f"node{node}",
                builder="repro.pdes.cluster:build_node",
                lookahead_us=lookahead_us,
                config={
                    "duration_us": duration_us,
                    "report_period_us": REPORT_PERIOD_US,
                    "seed": seed + 1000 * node,
                    "level": NODE_LEVELS[(node - 1) % len(NODE_LEVELS)],
                },
            )
        )
    return specs


def run_pdescluster(
    duration_us: float,
    seed: int = 42,
    n_nodes: int = 4,
    workers: Optional[int] = None,
) -> dict:
    """Run the cluster workload; returns the coordinator's canonical result."""
    from .coordinator import run_partitioned

    specs = pdescluster_specs(duration_us, seed=seed, n_nodes=n_nodes)
    return run_partitioned(specs, until=duration_us, workers=workers)
