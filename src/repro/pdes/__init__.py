"""PDES-lite: partitioned discrete-event execution inside a single run.

The sweep engine (:mod:`repro.parallel`) parallelizes *across* runs;
this package parallelizes *within* one. It exploits the structure the
hardware model already encodes: the server is a distributed machine
whose islands — host complex, NI complex, cluster nodes — interact only
through buses and networks with known **minimum** latencies (PCI bridge,
Ethernet switch, SAN). Those minimums are conservative lookahead, so a
coordinator can advance every partition through synchronized time
windows and deliver cross-partition interactions as timestamped
messages, with no rollback and no speculation.

Layers:

* :mod:`repro.pdes.boundary` — seam declarations read off the hardware
  models (PCI / Ethernet / SAN lookahead).
* :mod:`repro.pdes.partition` — :class:`PartitionSpec`,
  :class:`PartitionHarness`, :class:`CrossMessage`.
* :mod:`repro.pdes.coordinator` — the window protocol plus the serial
  reference executor and the multi-process executor (persistent spawn
  workers, canonical-dict IPC, error envelopes).
* :mod:`repro.pdes.cluster` — the ``pdescluster`` experiment: a
  front-door partition plus N node partitions coupled by admission
  waves across the SAN seam.
* :mod:`repro.pdes.plan` — partition plans for the existing experiment
  suite: seam-tagged units fanned across workers and merged back in
  fixed order, byte-identical to the serial run.

The correctness oracle is the same one every kernel optimisation here
answers to: golden digests. A partitioned run must produce *the byte-
identical result* of the serial run — for every worker count.
"""

from .boundary import Seam, describe_seams, ethernet_seam, pci_seam, san_seam
from .cluster import pdescluster_specs, run_pdescluster
from .coordinator import (
    CausalityError,
    Coordinator,
    ProcessExecutor,
    SerialExecutor,
    WorkerError,
    run_partitioned,
)
from .partition import CrossMessage, PartitionHarness, PartitionSpec
from .plan import Plan, Unit, plan_axes, plans, run_plan

__all__ = [
    "Seam",
    "describe_seams",
    "pci_seam",
    "ethernet_seam",
    "san_seam",
    "CrossMessage",
    "PartitionHarness",
    "PartitionSpec",
    "CausalityError",
    "WorkerError",
    "Coordinator",
    "SerialExecutor",
    "ProcessExecutor",
    "run_partitioned",
    "pdescluster_specs",
    "run_pdescluster",
    "Plan",
    "Unit",
    "plans",
    "plan_axes",
    "run_plan",
]
