"""The conservative-lookahead window coordinator.

One partitioned run is a sequence of synchronized time windows. Between
windows the coordinator holds every undelivered :class:`CrossMessage`
and each partition's earliest-output-time (EOT) promise; from those it
derives the largest provably-safe bound and tells every partition to
simulate up to it.

The bound (per window, from synchronized time ``T``)::

    bound = min( until,
                 min_i  eot_i,                      # spontaneous sends
                 min_m  m.deliver_at + L(m.dst) )   # reactive sends

* ``eot_i`` is partition *i*'s promise: a lower bound on the delivery
  time of anything it sends while receiving nothing further. The
  default (:meth:`PartitionHarness.eot`) is the classic YAWNS bound —
  next local event time plus seam lookahead.
* The reactive cap covers cascades: a message delivered at ``d`` can
  provoke a reply no earlier than ``d``, which cannot arrive anywhere
  before ``d + L(dst)`` (``L`` = the reacting partition's seam
  lookahead). Bounding the window there guarantees every message
  *generated* during a window is delivered in a strictly later one.

Windows are EXCLUSIVE of their bound: a partition advances through
events strictly before the bound, so the bound tick itself runs in the
next window — after that window's deliveries are injected — and a
message delivering exactly at a window bound still precedes the tick's
local events, the order a monolithic kernel pins (the hypothesis
differential in ``tests/pdes`` found the inclusive-advance ordering
inversion). A final inclusive pass closes the horizon tick the way
``Environment.run(until=horizon)`` would.

Safety is checked, not assumed: every harvested message must deliver at
or after the bound of the window that produced it (an unsound EOT
promise raises :class:`CausalityError`), and the kernel itself refuses
to schedule a delivery into a partition's past.

Two executors run the same protocol:

* :class:`SerialExecutor` — all partitions in-process, advanced in
  index order. The reference: zero IPC, bit-identical result.
* :class:`ProcessExecutor` — partitions mapped round-robin onto K
  persistent spawn workers (one window command per worker per round,
  canonical dicts over a ``multiprocessing`` pipe, error envelopes with
  tracebacks — the :mod:`repro.parallel` IPC idiom). Workers advance
  their partitions concurrently; the coordinator's protocol is a pure
  function of the specs, so the merged fragments are byte-identical to
  the serial executor's for every worker count.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .partition import CrossMessage, PartitionHarness, PartitionSpec, resolve_builder

__all__ = [
    "CausalityError",
    "WorkerError",
    "Coordinator",
    "SerialExecutor",
    "ProcessExecutor",
    "run_partitioned",
]

_INF = float("inf")


class CausalityError(RuntimeError):
    """A partition violated its EOT promise or a message arrived late."""


class WorkerError(RuntimeError):
    """A partition worker process failed; carries the worker traceback."""


# -- executors ----------------------------------------------------------------


class SerialExecutor:
    """All partitions in one process, advanced in index order."""

    def __init__(self, specs: Sequence[PartitionSpec]) -> None:
        self.harnesses: dict[int, PartitionHarness] = {}
        for spec in specs:
            harness = resolve_builder(spec.builder)(spec)
            harness.build()
            self.harnesses[spec.index] = harness

    @property
    def workers(self) -> int:
        return 0

    def eots(self) -> dict[int, float]:
        return {i: h.eot() for i, h in sorted(self.harnesses.items())}

    def window(
        self,
        bound: float,
        deliveries: dict[int, list[CrossMessage]],
        final: bool = False,
    ) -> tuple[list[CrossMessage], dict[int, float]]:
        harvested: list[CrossMessage] = []
        for i, harness in sorted(self.harnesses.items()):
            harness.deliver(deliveries.get(i, []))
            harness.advance(bound, inclusive=final)
            harvested.extend(harness.harvest())
        return harvested, self.eots()

    def finish(self) -> dict[int, dict]:
        return {
            i: {"fragment": h.finish(), "stats": h.stats()}
            for i, h in sorted(self.harnesses.items())
        }

    def close(self) -> None:
        self.harnesses.clear()


def _pdes_worker_main(conn) -> None:
    """Worker process loop: build partitions, run window commands.

    Every reply is an envelope: ``{"ok": True, ...}`` or
    ``{"ok": False, "error": str, "traceback": str}`` — a failure inside
    one window settles as a coordinator-side :class:`WorkerError` instead
    of a hung pipe.
    """
    import time

    harnesses: dict[int, PartitionHarness] = {}
    cpu_after_build = 0.0
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            return
        try:
            op = cmd["cmd"]
            if op == "build":
                for data in cmd["specs"]:
                    spec = PartitionSpec.from_dict(data)
                    harness = resolve_builder(spec.builder)(spec)
                    harness.build()
                    harnesses[spec.index] = harness
                # bring-up CPU (interpreter import + topology build) is
                # reported here and baselined out of the finish-time
                # number, so the bench can attribute window work and
                # startup separately; neither reaches a digest
                cpu_after_build = time.process_time()
                reply = {
                    "ok": True,
                    "eots": {i: h.eot() for i, h in harnesses.items()},
                    "cpu_s": cpu_after_build,
                }
            elif op == "window":
                harvested: list[dict] = []
                for i in sorted(harnesses):
                    harness = harnesses[i]
                    msgs = [
                        CrossMessage.from_dict(m)
                        for m in cmd["deliveries"].get(i, [])
                    ]
                    harness.deliver(msgs)
                    harness.advance(
                        cmd["bound"], inclusive=cmd.get("final", False)
                    )
                    harvested.extend(m.canonical() for m in harness.harvest())
                reply = {
                    "ok": True,
                    "harvest": harvested,
                    "eots": {i: h.eot() for i, h in harnesses.items()},
                }
            elif op == "finish":
                reply = {
                    "ok": True,
                    "results": {
                        i: {"fragment": h.finish(), "stats": h.stats()}
                        for i, h in harnesses.items()
                    },
                    # this worker's window-phase CPU seconds (bring-up
                    # excluded): the bench harness reads it to report
                    # the partitioned critical path; it never reaches
                    # result fragments or digests
                    "cpu_s": time.process_time() - cpu_after_build,
                }
            elif op == "exit":
                return  # no reply: the parent is already tearing down
            else:  # pragma: no cover - protocol guard
                reply = {"ok": False, "error": f"unknown command {op!r}"}
        except BaseException as exc:  # noqa: BLE001 - envelope everything
            reply = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": _traceback.format_exc(),
            }
        conn.send(reply)


class ProcessExecutor:
    """Partitions round-robin on K persistent spawn workers."""

    def __init__(self, specs: Sequence[PartitionSpec], workers: int) -> None:
        import time
        from multiprocessing import get_context

        if workers < 1:
            raise ValueError("ProcessExecutor needs at least one worker")
        _t0 = time.perf_counter()
        #: per-worker window-phase CPU seconds, filled by finish()
        self.worker_cpu_s: dict[int, float] = {}
        #: per-worker bring-up CPU seconds (import + build), from build()
        self.worker_build_cpu_s: dict[int, float] = {}
        self.workers = min(workers, len(specs)) or 1
        self._owner: dict[int, int] = {
            spec.index: k % self.workers for k, spec in enumerate(specs)
        }
        ctx = get_context("spawn")
        self._conns = []
        self._procs = []
        by_worker: dict[int, list[dict]] = {w: [] for w in range(self.workers)}
        for spec in specs:
            by_worker[self._owner[spec.index]].append(spec.canonical())
        for w in range(self.workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_pdes_worker_main, args=(child,), daemon=True,
                name=f"pdes-worker-{w}",
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        for w in range(self.workers):
            self._conns[w].send({"cmd": "build", "specs": by_worker[w]})
        self._eots: dict[int, float] = {}
        for w in range(self.workers):
            reply = self._checked(self._conns[w].recv())
            self._eots.update(
                {int(i): v for i, v in reply["eots"].items()}
            )
            self.worker_build_cpu_s[w] = reply.get("cpu_s", 0.0)
        #: wall seconds to spawn + build every worker (bench telemetry)
        self.startup_s = time.perf_counter() - _t0

    def _checked(self, reply: dict) -> dict:
        if not reply.get("ok"):
            tb = reply.get("traceback", "")
            self.close()
            raise WorkerError(
                f"pdes worker failed: {reply.get('error')}\n{tb}"
            )
        return reply

    def eots(self) -> dict[int, float]:
        return dict(sorted(self._eots.items()))

    def window(
        self,
        bound: float,
        deliveries: dict[int, list[CrossMessage]],
        final: bool = False,
    ) -> tuple[list[CrossMessage], dict[int, float]]:
        per_worker: dict[int, dict[int, list[dict]]] = {
            w: {} for w in range(self.workers)
        }
        for i, msgs in deliveries.items():
            per_worker[self._owner[i]][i] = [m.canonical() for m in msgs]
        for w in range(self.workers):
            self._conns[w].send(
                {
                    "cmd": "window",
                    "bound": bound,
                    "deliveries": per_worker[w],
                    "final": final,
                }
            )
        harvested: list[CrossMessage] = []
        self._eots = {}
        # collect in worker order: deterministic, and the coordinator
        # re-sorts deliveries anyway
        for w in range(self.workers):
            reply = self._checked(self._conns[w].recv())
            harvested.extend(CrossMessage.from_dict(m) for m in reply["harvest"])
            self._eots.update({int(i): v for i, v in reply["eots"].items()})
        return harvested, self.eots()

    def finish(self) -> dict[int, dict]:
        for w in range(self.workers):
            self._conns[w].send({"cmd": "finish"})
        results: dict[int, dict] = {}
        for w in range(self.workers):
            reply = self._checked(self._conns[w].recv())
            results.update({int(i): r for i, r in reply["results"].items()})
            self.worker_cpu_s[w] = reply.get("cpu_s", 0.0)
        return dict(sorted(results.items()))

    def close(self) -> None:
        for conn, proc in zip(self._conns, self._procs):
            try:
                if not conn.closed:
                    conn.send({"cmd": "exit"})
                    conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        self._conns, self._procs = [], []


# -- the coordinator ----------------------------------------------------------


@dataclass
class RunStats:
    """Deterministic execution counters of one partitioned run."""

    partitions: int = 0
    workers: int = 0
    windows: int = 0
    messages: int = 0
    #: the synchronized bounds, in order — the window schedule itself is
    #: a pure function of the specs, so this is digest-stable
    bounds: list = field(default_factory=list)

    def canonical(self) -> dict:
        return {
            "partitions": self.partitions,
            "workers": self.workers,
            "windows": self.windows,
            "messages": self.messages,
            "bounds": list(self.bounds),
        }


class Coordinator:
    """Advance a set of partitions to ``until`` through safe windows."""

    def __init__(
        self,
        specs: Sequence[PartitionSpec],
        until: float,
        workers: Optional[int] = None,
    ) -> None:
        if not specs:
            raise ValueError("need at least one partition spec")
        indices = [s.index for s in specs]
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate partition indices: {indices}")
        self.specs = list(specs)
        self.until = float(until)
        self.workers = workers
        self._lookahead = {s.index: s.lookahead_us for s in self.specs}

    def run(self) -> dict:
        """Execute the window protocol; returns fragments + stats.

        Returns ``{"fragments": {index: dict}, "partition_stats":
        {index: dict}, "stats": dict, "timing": dict}``. Everything
        except ``timing`` is canonical and deterministic; ``timing``
        carries wall/CPU measurements for the bench harness and must
        never be folded into digest-bearing result content.
        """
        import time as _time

        _t0 = _time.perf_counter()
        if self.workers:
            executor = ProcessExecutor(self.specs, self.workers)
        else:
            executor = SerialExecutor(self.specs)
        stats = RunStats(partitions=len(self.specs), workers=executor.workers)
        try:
            pending: list[CrossMessage] = []
            eots = executor.eots()
            t = 0.0
            while t < self.until:
                react_cap = min(
                    (m.deliver_at + self._lookahead[m.dst] for m in pending),
                    default=_INF,
                )
                bound = min(self.until, min(eots.values(), default=_INF), react_cap)
                if not bound > t:
                    raise CausalityError(
                        f"window bound {bound} does not advance past {t} — "
                        "an EOT promise or seam lookahead is unsound"
                    )
                due = sorted(
                    (m for m in pending if m.deliver_at <= bound),
                    key=lambda m: m.order_key,
                )
                pending = [m for m in pending if m.deliver_at > bound]
                deliveries: dict[int, list[CrossMessage]] = {}
                for m in due:
                    deliveries.setdefault(m.dst, []).append(m)
                harvested, eots = executor.window(bound, deliveries)
                for m in harvested:
                    if m.deliver_at < bound:
                        raise CausalityError(
                            f"partition {m.src} sent {m.kind!r} delivering at "
                            f"{m.deliver_at}, inside the window it was "
                            f"generated in (bound {bound}) — its EOT promise "
                            "was unsound"
                        )
                    if m.dst not in self._lookahead:
                        raise ValueError(
                            f"message {m.kind!r} addressed to unknown "
                            f"partition {m.dst}; valid indices: "
                            f"{sorted(self._lookahead)}"
                        )
                pending.extend(harvested)
                stats.windows += 1
                stats.messages += len(due)
                stats.bounds.append(bound)
                t = bound
            # Horizon closure. The loop's windows advance each partition
            # EXCLUSIVELY (events strictly before the bound), so tick
            # ``until`` itself is still queued everywhere — with every
            # delivery due at it already injected ahead of it. One
            # inclusive pass processes that tick exactly the way a
            # monolithic ``run(until=horizon)`` would; anything sent
            # from it delivers past the horizon and is dropped either
            # way, so the harvest needs no causality check.
            executor.window(self.until, {}, final=True)
            results = executor.finish()
        finally:
            executor.close()
        return {
            "fragments": {i: r["fragment"] for i, r in results.items()},
            "partition_stats": {i: r["stats"] for i, r in results.items()},
            "stats": stats.canonical(),
            "timing": {
                "wall_s": _time.perf_counter() - _t0,
                "startup_s": getattr(executor, "startup_s", 0.0),
                "worker_cpu_s": dict(getattr(executor, "worker_cpu_s", {})),
                "worker_build_cpu_s": dict(
                    getattr(executor, "worker_build_cpu_s", {})
                ),
            },
        }


def run_partitioned(
    specs: Sequence[PartitionSpec],
    until: float,
    workers: Optional[int] = None,
) -> dict:
    """One-call façade: coordinate *specs* to *until* on *workers*.

    ``workers=None``/``0`` runs the serial reference executor. Inside a
    daemonic process (e.g. a sweep worker that cannot fork children) the
    request quietly degrades to serial — the result is byte-identical
    either way, that being the whole point.
    """
    if workers:
        import multiprocessing

        if multiprocessing.current_process().daemon:
            workers = None
    return Coordinator(specs, until, workers=workers).run()
