"""Partition plans: the existing experiment suite, fanned and reassembled.

The event-level coordinator (:mod:`repro.pdes.coordinator`) partitions
*one kernel*; this module partitions *one experiment*. Every headline
experiment is a fixed sequence of independent full-duration simulation
cells — load levels, chaos scenarios, media transports, cluster
campaigns — and each cell is a deterministic seed-pinned evaluation, so
a partitioned run executes the cells on :class:`~repro.parallel.runner.
SweepRunner` workers (cache disabled — a partitioned run must recompute)
and reassembles the fragments in the fixed serial order.

The contract, enforced by the golden-digest oracle:

* ``rows``, ``series``, ``notes`` — byte-identical to the serial run,
  whatever worker count executed the cells;
* ``footers`` — deterministic, but allowed to describe the partitioned
  assembly (footers are exempt from the digest by design).

Experiments with no registered plan (the microsecond-scale tables, the
single-run observability demo) fall back to a single-unit plan: the
whole experiment computed in one worker and round-tripped through the
canonical result serialization — the same fidelity proof, no fan-out.
``pdescluster`` never lands here: its ``partitions`` axis selects the
event-level executor inside one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.report import ExperimentResult

__all__ = ["Unit", "Plan", "plans", "plan_axes", "run_plan"]


@dataclass(frozen=True)
class Unit:
    """One independent cell of a partitioned experiment."""

    name: str
    experiment: str  # REGISTRY id or module:callable (Job convention)
    config: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Plan:
    """A partitioned execution recipe for one experiment."""

    experiment: str
    #: the independence axis the plan cuts along (shown by --list)
    axis: str
    units: tuple
    #: reassembles worker fragments into the final result; runs in the
    #: coordinating process, so it is a plain callable
    assemble: Callable


def _assemble_concat(exp_id: str, title_fmt: str, notes: tuple = ()):
    """Generic assemble: concatenate fragment rows/series in unit order."""

    def assemble(fragments, ctx) -> "ExperimentResult":
        from repro.experiments.report import ExperimentResult

        result = ExperimentResult(
            exp_id=exp_id, title=title_fmt.format(seed=ctx["seed"])
        )
        for frag in fragments:
            result.rows.extend(frag.rows)
            result.series.extend(frag.series)
            result.footers.extend(frag.footers)
        for note in notes:
            result.notes.append(note)
        result.footers.append(
            f"assembled from {len(fragments)} partitioned cells"
        )
        return result

    return assemble


def _chaos_plan() -> Plan:
    from repro.faults import SCENARIOS

    names = list(SCENARIOS)
    note_windows = "fault windows per scenario: " + ", ".join(
        f"{n}=[{SCENARIOS[n].start_frac:.2f},{SCENARIOS[n].end_frac:.2f}]xT"
        for n in names
    )
    return Plan(
        experiment="chaos",
        axis=f"chaos scenario ({len(names)} cells)",
        units=tuple(
            Unit(name, "chaos", {"scenarios": [name]}) for name in names
        ),
        assemble=_assemble_concat(
            "Chaos",
            "Fault injection against the NI configuration (seed {seed})",
            notes=(
                note_windows,
                "deterministic: identical seed => identical rows (plane "
                "draws from named substreams only while a fault window is "
                "active)",
            ),
        ),
    )


def _failover_plan() -> Plan:
    from repro.faults.scenarios import FAILOVER_SCENARIOS

    names = list(FAILOVER_SCENARIOS)
    units = [Unit("control", "failover", {"scenarios": []})]
    units += [
        Unit(name, "failover", {"scenarios": [name], "include_control": False})
        for name in names
    ]
    return Plan(
        experiment="failover",
        axis=f"failover campaign (control + {len(names)} cells)",
        units=tuple(units),
        assemble=_assemble_concat(
            "Failover",
            "NI failover: detection, migration, recovery (seed {seed})",
            notes=(
                "detection budget = K·heartbeat interval + grace "
                "(card-crash detection latency must sit inside it)",
                "deterministic: identical seed => identical migration "
                "order, detection time, and violation counts",
            ),
        ),
    )


def _cluster_plan() -> Plan:
    from repro.cluster import CLUSTER_SCENARIOS

    names = list(CLUSTER_SCENARIOS)
    units = [Unit("control", "cluster", {"scenarios": []})]
    units += [
        Unit(name, "cluster", {"scenarios": [name], "include_control": False})
        for name in names
    ]
    return Plan(
        experiment="cluster",
        axis=f"cluster campaign (control + {len(names)} cells)",
        units=tuple(units),
        assemble=_assemble_concat(
            "Cluster",
            "cluster front door: 3 nodes, policy least-loaded, "
            "node-loss chaos (seed {seed})",
            notes=(
                "zero unaccounted: every stream ends placed, parked, or "
                "lost — 'streams unaccounted' rows must read 0",
                "at-most-once placement: an admit whose every retry timed "
                "out is rescinded before any other node is tried; "
                "unresolvable rescinds park",
                "deterministic: identical seed => identical placement, "
                "detection, and accounting rows (byte-identical across "
                "--jobs fan-out)",
            ),
        ),
    )


def _transport_plan() -> Plan:
    from repro.net.transport import VALID_TRANSPORTS

    names = list(VALID_TRANSPORTS)
    return Plan(
        experiment="transport",
        axis=f"media transport ({len(names)} cells)",
        units=tuple(
            Unit(name, "transport", {"transports": [name]}) for name in names
        ),
        assemble=_assemble_concat(
            "Transport",
            "Media transport comparison at 60% web load (seed {seed})",
            notes=(
                "udp is the shipped raw-frame path; tcp/ttp carry each "
                "frame as one reliable record between the serving port and "
                "its client",
                "transport stacks charge their own per-packet protocol "
                "costs on top of the service's transmit-side stack charge",
                "deterministic: identical seed => identical rows across "
                "double runs",
            ),
        ),
    )


def _figure_levels_plan(exp_id: str, name: str, levels: tuple, title: str, note: str) -> Plan:
    return Plan(
        experiment=name,
        axis=f"load level ({len(levels)} cells)",
        units=tuple(
            Unit(level, name, {"levels": [level]}) for level in levels
        ),
        assemble=_assemble_concat(exp_id, title, notes=(note,)),
    )


def _figure9_plan() -> Plan:
    from repro.experiments.figures import FIGURE9_LEVELS, assemble_figure9

    return Plan(
        experiment="figure9",
        axis=f"load level ({len(FIGURE9_LEVELS)} cells)",
        units=tuple(
            Unit(
                level,
                "repro.experiments.figures:figure9_cell",
                {"level": level},
            )
            for level in FIGURE9_LEVELS
        ),
        assemble=lambda fragments, ctx: assemble_figure9(fragments),
    )


def _figure10_plan() -> Plan:
    from repro.experiments.figures import FIGURE10_LEVELS, assemble_figure10

    return Plan(
        experiment="figure10",
        axis=f"load level ({len(FIGURE10_LEVELS)} cells)",
        units=tuple(
            Unit(
                level,
                "repro.experiments.figures:figure10_cell",
                {"level": level},
            )
            for level in FIGURE10_LEVELS
        ),
        assemble=lambda fragments, ctx: assemble_figure10(fragments),
    )


def plans() -> dict[str, Plan]:
    """Every registered partition plan, keyed by experiment id.

    Built lazily: the axis values are read off the authoritative
    registries (scenario tables, transport set, load profiles) so a plan
    can never enumerate a cell the serial experiment would not run.
    """
    out = {
        "chaos": _chaos_plan(),
        "failover": _failover_plan(),
        "cluster": _cluster_plan(),
        "transport": _transport_plan(),
        "figure9": _figure9_plan(),
        "figure10": _figure10_plan(),
    }
    for name, exp_id, title, note in (
        (
            "figure6",
            "Figure 6",
            "CPU Utilization Variation with Server Load",
            "the 60% profile bursts past 80% utilization in its 40-80s "
            "window, matching the paper's trace",
        ),
        (
            "figure7",
            "Figure 7",
            "Bandwidth Distribution with Load Variation (host DWCS)",
            "who-wins shape: no-load > 45% > 60%; worst case bounded at "
            "half by the streams' 1/2 loss-tolerance",
        ),
        (
            "figure8",
            "Figure 8",
            "Queuing Delay vs Frames Sent with Load Variation (host DWCS)",
            "delays ramp with backlog; load multiplies the ramp",
        ),
    ):
        out[name] = _figure_levels_plan(
            exp_id, name, ("none", "45%", "60%"), title, note
        )
    return out


def plan_axes() -> dict[str, str]:
    """experiment id -> human description of its partition axis."""
    return {name: plan.axis for name, plan in sorted(plans().items())}


def _run_units_inline(jobs) -> list:
    """Run unit jobs in-process through the worker code path.

    Used when worker processes cannot be spawned (inside a daemonic
    sweep worker). The result still round-trips the canonical dict
    serialization — the exact fidelity the process fan-out relies on —
    so the assembled bytes are identical.
    """
    from repro.parallel.worker import run_job

    payloads = []
    for job in jobs:
        out = run_job({"job": job.canonical()})
        payloads.append(out)
    return payloads


def run_plan(
    experiment: str,
    seed: int = 42,
    duration_us: Optional[float] = None,
    partitions: int = 2,
    **overrides,
) -> "ExperimentResult":
    """Execute one experiment's partition plan on worker processes.

    ``partitions`` is the worker-process count (the cells themselves are
    the fixed decomposition). Extra keyword ``overrides`` force the
    single-unit fallback — a plan's cell list is only valid for the
    experiment's default axis values.
    """
    import multiprocessing

    from repro.experiments.report import ExperimentResult

    if not isinstance(partitions, int) or partitions < 1:
        raise ValueError(
            f"partitions must be a positive worker count, got "
            f"{partitions!r}; use 1..N processes (or omit the flag for "
            "the serial path)"
        )
    from repro.parallel import Job, SweepRunner

    plan = None if overrides else plans().get(experiment)
    if plan is None:
        units = (Unit("whole", experiment, dict(overrides)),)
        assemble = None
    else:
        units = plan.units
        assemble = plan.assemble
    jobs = [
        Job(
            experiment=u.experiment,
            seed=seed,
            duration_us=duration_us,
            config=u.config,
        )
        for u in units
    ]
    if multiprocessing.current_process().daemon:
        payloads = _run_units_inline(jobs)
        failures = [
            (jobs[i].label, p.get("error")) for i, p in enumerate(payloads) if not p.get("ok")
        ]
        if failures:
            raise RuntimeError(
                "partitioned cells failed: "
                + "; ".join(f"{label} ({err})" for label, err in failures)
            )
        fragments = [ExperimentResult.from_dict(p["result"]) for p in payloads]
    else:
        report = SweepRunner(
            workers=min(partitions, len(jobs)), cache=None
        ).run(jobs)
        failed = [o for o in report.outcomes if not o.ok]
        if failed:
            raise RuntimeError(
                "partitioned cells failed: "
                + "; ".join(f"{o.job.label} ({o.error})" for o in failed)
            )
        # the runner already rebuilt each result from its canonical dict
        fragments = [o.result for o in report.outcomes]
    if assemble is None:
        return fragments[0]
    return assemble(fragments, {"seed": seed, "duration_us": duration_us})
