"""The first split: host complex vs NI complex across the PCI seam.

The ROADMAP's "meaningful first PR" partition: one server node cut at
the PCI host bridge. The host partition runs the frame-producing side
(descriptor pushes, as the host CPU would post I2O messages); the NI
partition runs the card side (service time per descriptor, completion
acks back across the bridge). Cross-partition latencies are the PIO
word costs from Table 5 — both above the bridge's declared minimum
(:meth:`~repro.hw.pci.PCIBridge.min_cross_latency_us`), which is what
makes the conservative windows sound.

This module is deliberately small: it is the reference workload for the
partitioned-vs-serial differential tests and the worked example in the
docs. The cluster-scale workload lives in :mod:`repro.pdes.cluster`.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.pci import PIO_READ_US, PIO_WRITE_US

from .partition import CrossMessage, PartitionHarness, PartitionSpec

__all__ = ["hostni_specs", "run_hostni", "build_host", "build_ni"]

#: default PCI-seam lookahead: both buses' per-transaction overhead
#: (matches PCIBridge.min_cross_latency_us() at default parameters)
PCI_LOOKAHEAD_US = 1.0

HOST, NI = 0, 1


class HostHarness(PartitionHarness):
    """The host complex: posts descriptors, collects completion acks."""

    def build(self) -> None:
        cfg = self.spec.config
        self.n_frames = int(cfg["n_frames"])
        self.period_us = float(cfg["period_us"])
        self.post_latency_us = float(cfg.get("post_latency_us", PIO_WRITE_US))
        self.acked: list[float] = []  # ack round-trip times
        self._posted = 0

        def post() -> None:
            self._posted += 1
            self.send(
                NI,
                "descriptor",
                {"seq": self._posted, "bytes": 1000, "posted_at": self.env.now},
                latency_us=self.post_latency_us,
            )
            if self._posted < self.n_frames:
                self.env.schedule_callback(self.period_us, post, name="post")

        if self.n_frames > 0:
            self.env.schedule_callback(self.period_us, post, name="post")

    def eot(self) -> float:
        """Promise: the host only sends at its scheduled post times."""
        if self._posted >= self.n_frames:
            return float("inf")
        return self.env.peek() + self.post_latency_us

    def on_message(self, msg: CrossMessage) -> None:
        self.acked.append(self.env.now - msg.payload["posted_at"])

    def finish(self) -> dict:
        return {
            "posted": self._posted,
            "acked": len(self.acked),
            "rtt_sum_us": sum(self.acked),
            "last_ack_us": self.acked[-1] if self.acked else 0.0,
        }


class NIHarness(PartitionHarness):
    """The NI complex: services descriptors, acks across the bridge."""

    def build(self) -> None:
        cfg = self.spec.config
        self.service_us = float(cfg["service_us"])
        self.ack_latency_us = float(cfg.get("ack_latency_us", PIO_READ_US))
        self.served = 0
        self.busy_until = 0.0

    def on_message(self, msg: CrossMessage) -> None:
        # FIFO single-server card: service starts when the engine frees up
        start = max(self.env.now, self.busy_until)
        self.busy_until = start + self.service_us

        def complete() -> None:
            self.served += 1
            self.send(
                HOST,
                "ack",
                dict(msg.payload),
                latency_us=self.ack_latency_us,
            )

        self.env.schedule_at(self.busy_until, complete, name="service")

    def finish(self) -> dict:
        return {"served": self.served, "busy_until_us": self.busy_until}


def build_host(spec: PartitionSpec) -> HostHarness:
    return HostHarness(spec)


def build_ni(spec: PartitionSpec) -> NIHarness:
    return NIHarness(spec)


def hostni_specs(
    n_frames: int = 50,
    period_us: float = 1_000.0,
    service_us: float = 700.0,
    lookahead_us: float = PCI_LOOKAHEAD_US,
) -> list[PartitionSpec]:
    """The 2-partition host/NI split at the PCI bridge seam."""
    return [
        PartitionSpec(
            index=HOST,
            name="host-complex",
            builder="repro.pdes.hostni:build_host",
            lookahead_us=lookahead_us,
            config={"n_frames": n_frames, "period_us": period_us},
        ),
        PartitionSpec(
            index=NI,
            name="ni-complex",
            builder="repro.pdes.hostni:build_ni",
            lookahead_us=lookahead_us,
            config={"service_us": service_us},
        ),
    ]


def run_hostni(
    n_frames: int = 50,
    period_us: float = 1_000.0,
    service_us: float = 700.0,
    until: Optional[float] = None,
    workers: Optional[int] = None,
) -> dict:
    """Run the host/NI split; returns the coordinator's canonical result."""
    from .coordinator import run_partitioned

    specs = hostni_specs(n_frames, period_us, service_us)
    horizon = until if until is not None else (n_frames + 5) * period_us
    return run_partitioned(specs, until=horizon, workers=workers)
