"""Partition boundaries: the hardware seams and their lookahead.

The paper's server is already a distributed machine — host CPUs and
I960RD cards coupled only through PCI/I2O messages, nodes coupled only
through the SAN — so the hardware model encodes, at each seam, a
*minimum* latency any interaction must pay to cross it:

* :meth:`repro.hw.pci.PCIBridge.min_cross_latency_us` — both buses'
  per-transaction overhead (host complex ↔ NI complex);
* :meth:`repro.hw.ethernet.EthernetSwitch.min_cross_latency_us` — the
  store-and-forward lookup latency (anything ↔ anything through a
  switch);
* :meth:`repro.server.cluster.Cluster.min_cross_latency_us` — NI
  per-packet encapsulation plus the SAN switch (node ↔ node).

Those minimums are exactly the *conservative lookahead* of classic
parallel discrete-event simulation: if partition A is synchronized with
partition B up to time ``T``, nothing A does can affect B before
``T + lookahead``, so B may safely simulate that far ahead. The
coordinator (:mod:`repro.pdes.coordinator`) turns each seam's lookahead
into synchronized time windows.

A :class:`Seam` is the declaration the rest of :mod:`repro.pdes`
consumes; :func:`describe_seams` reports the standard numbers for the
default model parameters (what ``experiments --list`` prints).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Seam",
    "pci_seam",
    "ethernet_seam",
    "san_seam",
    "describe_seams",
]


@dataclass(frozen=True)
class Seam:
    """One partition boundary: a name and its conservative lookahead."""

    name: str
    lookahead_us: float
    description: str

    def __post_init__(self) -> None:
        if self.lookahead_us <= 0:
            raise ValueError(
                f"seam {self.name!r} needs a positive lookahead "
                f"(got {self.lookahead_us!r}); a zero-lookahead boundary "
                "cannot bound a synchronization window"
            )


def pci_seam(bridge) -> Seam:
    """The host-complex ↔ NI-complex boundary of one server node."""
    return Seam(
        name="pci",
        lookahead_us=bridge.min_cross_latency_us(),
        description="host complex <-> NI complex through the PCI host bridge",
    )


def ethernet_seam(switch) -> Seam:
    """A boundary through one Ethernet switch (clients, inter-card)."""
    return Seam(
        name="ethernet",
        lookahead_us=switch.min_cross_latency_us(),
        description=f"through switch {switch.name!r} (store-and-forward)",
    )


def san_seam(cluster) -> Seam:
    """The node ↔ node boundary across a cluster's SAN."""
    return Seam(
        name="san",
        lookahead_us=cluster.min_cross_latency_us(),
        description="node <-> node across the SAN (NI stack + switch)",
    )


def describe_seams() -> list[Seam]:
    """The three standard seams at default model parameters.

    Builds throwaway default-configured models to read the declared
    minimums off the hardware itself, so this listing can never drift
    from the simulation.
    """
    from repro.hw.bus import Bus
    from repro.hw.ethernet import EthernetSwitch
    from repro.hw.pci import PCIBridge, PCISegment
    from repro.server.cluster import Cluster
    from repro.sim import Environment

    env = Environment()
    system_bus = Bus(env, "sys0", bandwidth_mb_s=528.0)
    segment = PCISegment(env, "pci0")
    bridge = PCIBridge(env, system_bus, segment)
    switch = EthernetSwitch(env, "eth0")
    cluster = Cluster(env, n_nodes=2, n_cpus_per_node=1)
    return [pci_seam(bridge), ethernet_seam(switch), san_seam(cluster)]
