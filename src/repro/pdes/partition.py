"""Partitions: one simulation kernel per hardware seam-bounded island.

A partitioned run decomposes one simulation into N logical partitions.
Each partition owns a full :class:`~repro.sim.Environment` (its own
event queue, clock, and RNG substreams) and simulates one island of the
hardware — a node, or the host complex, or the NI complex. Everything
that crosses a seam becomes a :class:`CrossMessage`: a timestamped,
canonical-dict payload whose delivery time is the send time plus the
seam's declared latency (never less than the seam lookahead, which is
what makes conservative windows sound).

The pieces:

* :class:`PartitionSpec` — the canonical, process-portable description
  of one partition (index, name, a ``module:callable`` builder, config).
  Specs cross process boundaries exactly like
  :class:`repro.parallel.Job` payloads: plain dicts only.
* :class:`PartitionHarness` — the base class a partitioned workload
  subclasses. The subclass builds its model in ``build()``, reacts to
  inbound messages in ``on_message()``, and reports its results as a
  canonical fragment dict in ``finish()``. The harness provides
  ``send()``/``deliver()``/``harvest()``/``advance()`` plumbing and the
  default YAWNS earliest-output-time promise.

Determinism contract: a partition's local simulation is a single-
threaded deterministic kernel, and the coordinator's window protocol is
a pure function of the specs — so the merged result is byte-identical
whatever worker count (or none) executed the partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "CrossMessage",
    "PartitionSpec",
    "PartitionHarness",
    "resolve_builder",
    "MESSAGE_PRIORITY",
]

#: queue priority for cross-partition deliveries: below URGENT kernel
#: bookkeeping (0) but above NORMAL local events (1) is not possible with
#: ints between — use 0 so a message landing on a busy tick is processed
#: before that tick's local events, which pins "arrivals first" order
#: deterministically on every executor.
MESSAGE_PRIORITY = 0

#: priority of the advance() stop marker: outranks every real priority
#: (URGENT included) so it fires first at the window bound and leaves
#: the bound tick's real events queued for the next window.
_STOP_PRIORITY = -1


def _stop_marker() -> None:
    """Callback of the advance() stop marker; never observable."""


@dataclass(frozen=True)
class CrossMessage:
    """One seam crossing: a timestamped payload between two partitions."""

    src: int
    dst: int
    send_time: float
    deliver_at: float
    seq: int  # per-source monotone counter: total order within a channel
    kind: str
    payload: dict

    #: deterministic sort key for deliveries sharing a window — matches
    #: the order a monolithic run would process the sends in
    @property
    def order_key(self) -> tuple:
        return (self.deliver_at, self.send_time, self.src, self.seq)

    def canonical(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "send_time": self.send_time,
            "deliver_at": self.deliver_at,
            "seq": self.seq,
            "kind": self.kind,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrossMessage":
        return cls(**data)


@dataclass(frozen=True)
class PartitionSpec:
    """Canonical description of one partition, portable across processes.

    ``builder`` is a ``module:callable`` path resolving to
    ``callable(spec) -> PartitionHarness`` — the same import-by-path
    convention :mod:`repro.parallel.worker` uses for experiments, so
    worker processes never unpickle code objects.
    """

    index: int
    name: str
    builder: str
    lookahead_us: float
    config: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("partition index must be >= 0")
        if self.lookahead_us <= 0:
            raise ValueError(
                f"partition {self.name!r} needs a positive lookahead_us"
            )
        if ":" not in self.builder:
            raise ValueError(
                f"builder must be 'module:callable', got {self.builder!r}"
            )

    def canonical(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "builder": self.builder,
            "lookahead_us": self.lookahead_us,
            "config": self.config,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionSpec":
        return cls(**data)


def resolve_builder(path: str) -> Callable:
    """Import a ``module:callable`` harness builder."""
    import importlib

    module_name, _, attr = path.partition(":")
    try:
        module = importlib.import_module(module_name)
        builder = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ValueError(f"cannot resolve partition builder {path!r}: {exc}")
    if not callable(builder):
        raise ValueError(f"partition builder {path!r} is not callable")
    return builder


class PartitionHarness:
    """Base class: one partition's kernel plus its seam plumbing.

    Subclass obligations:

    * ``build()`` — construct the partition's model on ``self.env``
      (called exactly once, before the first window).
    * ``on_message(msg)`` — react to an inbound :class:`CrossMessage`;
      runs *at* the message's delivery time inside the local simulation.
    * ``finish()`` — return the partition's results as a canonical dict
      (plain ints/floats/strings/lists/dicts only).
    * optionally ``eot()`` — see below.

    The earliest-output-time promise
    --------------------------------
    ``eot()`` must return a *lower bound on the delivery time of any
    message this partition may send while receiving nothing further*.
    The default is the classic YAWNS bound — next local event time plus
    the seam lookahead — which is always sound because a message can
    only be sent while processing a local event, and its delivery adds
    at least the lookahead. A harness with structural knowledge (e.g. a
    front door that only ever sends at scheduled admission waves) may
    promise much further ahead, collapsing thousands of lookahead-wide
    windows into a handful; the coordinator's causality guards turn an
    unsound promise into a hard error rather than silent corruption.
    """

    def __init__(self, spec: PartitionSpec, env: Optional[Environment] = None) -> None:
        self.spec = spec
        self.index = spec.index
        self.lookahead_us = spec.lookahead_us
        self.env = env if env is not None else Environment()
        self._outbox: list[CrossMessage] = []
        self._send_seq = 0
        #: messages delivered, sends harvested (cheap per-partition stats)
        self.received = 0
        self.sent = 0

    # -- subclass API --------------------------------------------------------
    def build(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_message(self, msg: CrossMessage) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def eot(self) -> float:
        """Earliest-output-time promise (see class docstring)."""
        return self.env.peek() + self.lookahead_us

    # -- provided plumbing ---------------------------------------------------
    def send(
        self,
        dst: int,
        kind: str,
        payload: dict,
        latency_us: Optional[float] = None,
    ) -> CrossMessage:
        """Emit a cross-partition message from the current local time.

        ``latency_us`` defaults to the seam lookahead and may never be
        below it — the conservative windows are only sound because every
        crossing pays at least the declared seam minimum.
        """
        latency = self.lookahead_us if latency_us is None else latency_us
        if latency < self.lookahead_us:
            raise ValueError(
                f"cross-partition latency {latency} below the declared "
                f"seam lookahead {self.lookahead_us} — the conservative "
                "window protocol would be unsound"
            )
        self._send_seq += 1
        msg = CrossMessage(
            src=self.index,
            dst=dst,
            send_time=self.env.now,
            deliver_at=self.env.now + latency,
            seq=self._send_seq,
            kind=kind,
            payload=payload,
        )
        self._outbox.append(msg)
        self.sent += 1
        return msg

    def deliver(self, messages: list[CrossMessage]) -> None:
        """Inject inbound messages as timestamped local events.

        Called by the executor between windows, in the deterministic
        ``order_key`` order the coordinator fixed. ``schedule_at``
        raises if a delivery time is already in the local past — the
        kernel-level causality guard.
        """
        from functools import partial

        for msg in messages:
            self.env.schedule_at(
                msg.deliver_at,
                partial(self.on_message, msg),
                priority=MESSAGE_PRIORITY,
                name=f"xmsg:{msg.kind}",
            )
            self.received += 1

    def advance(self, bound: float, inclusive: bool = False) -> None:
        """Run the local kernel up to the synchronized window bound.

        Exclusive by default — the classic conservative-window rule:
        events at exactly ``bound`` belong to the *next* window, which
        injects its deliveries first, so a message delivering exactly
        at a window bound still precedes that tick's local events (the
        order a monolithic kernel pins, because deliveries carry
        :data:`MESSAGE_PRIORITY`). ``Environment.run(until=T)`` is
        inclusive of tick ``T``, so the exclusive stop is a marker event
        at the bound that outranks every real priority: it fires first,
        halts the run with the clock exactly on ``bound``, and leaves
        the tick's real events queued.

        The coordinator's horizon-closing pass sets ``inclusive=True``
        to process the final tick the way a monolithic
        ``run(until=horizon)`` would.
        """
        if inclusive:
            self.env.run(until=bound)
            return
        stop = self.env.schedule_at(
            bound, _stop_marker, priority=_STOP_PRIORITY, name="pdes:window"
        )
        self.env.run(until=stop)

    def harvest(self) -> list[CrossMessage]:
        """Drain messages sent since the last harvest."""
        out, self._outbox = self._outbox, []
        return out

    def stats(self) -> dict:
        return {"sent": self.sent, "received": self.received}
