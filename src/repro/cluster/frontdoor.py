"""The fault-tolerant admission front door.

One logical admission point for the whole cluster. Every stream enters
through :meth:`FrontDoor.admit_stream`; the front door owns the
cluster-wide :class:`~repro.cluster.ledger.ClusterLedger`, ranks nodes
through a pluggable :class:`~repro.cluster.placement.PlacementPolicy`,
and talks to nodes only through the hardened
:class:`~repro.cluster.rpc.ClusterRPC` (timeouts, capped backoff with
jitter, token-deduplicated delivery).

**Backpressure tiers.** Admission walks ``full → degraded → parked``:
first every healthy node is offered the stream at full rate; if all
refuse, the sweep repeats at the degraded rendition (anchor frames only,
half the reserved service time); if that fails too the stream parks and
holds no capacity anywhere. Nothing is silently dropped — the ledger
ends every stream in exactly one state.

**At-most-once placement.** The RPC layer's token cache absorbs
duplicated deliveries; what it cannot absorb is a call whose *reply* was
lost — the admit executed but the front door cannot know. Before trying
another node the front door therefore **rescinds** the ambiguous token:
the node either undoes the placement (it had executed) or poisons the
token (a late duplicate now refuses). Only a successful rescind lets
placement move on; if even the rescind times out the stream parks rather
than risk serving from two nodes. Double placement is additionally
backstopped by the ledger, which raises on a second ``place``.

**Node supervision.** Each node beacons over its control channel into a
per-node :class:`~repro.ha.watchdog.Watchdog` whose classification probe
crosses the SAN (out of band with the control path): silent + probe-dead
means the node crashed — open the circuit breaker and fail over every
ledgered stream; silent + probe-alive means the control path is
partitioned — open the breaker (no *new* placements) but migrate nothing,
because the node is still serving its streams.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.core.attributes import StreamSpec
from repro.ha.watchdog import Watchdog
from repro.media.mpeg import MPEGFile
from repro.metrics.perfmeter import RecoveryMeter
from repro.obs.plane import CLUSTER_CATEGORY
from repro.server.cluster import Cluster
from repro.sim import Environment

from .ledger import ClusterLedger
from .node import NODE_BEAT_INTERVAL_US, ClusterNode
from .placement import NodeView, PlacementPolicy
from .rpc import CircuitBreaker, ClusterRPC, RPCTimeout

__all__ = ["FrontDoor", "DEGRADED_ADMIT_FRACTION", "PROBE_RTT_US"]

#: service-time fraction reserved for a degraded-tier admission (the
#: anchor-frames-only rendition roughly halves the frame rate)
DEGRADED_ADMIT_FRACTION = 0.5

#: out-of-band health probe round trip across the SAN, µs
PROBE_RTT_US = 400.0


class FrontDoor:
    """Cluster admission controller, failure detector, and failover driver."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        nodes: Sequence[ClusterNode],
        rpc: ClusterRPC,
        policy: PlacementPolicy,
        beat_interval_us: float = NODE_BEAT_INTERVAL_US,
        k_missed: int = 3,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.nodes = list(nodes)
        self.rpc = rpc
        self.policy = policy
        self.ledger = ClusterLedger()
        self.meter = RecoveryMeter(env, name="cluster-recovery")
        #: everything needed to re-admit a stream elsewhere later
        self._stream_info: dict[str, dict] = {}
        self._token_seq = 0
        self.breakers: list[CircuitBreaker] = []
        self.watchdogs: list[Watchdog] = []
        # telemetry
        self.admits_requested = 0
        self.ambiguous_admits = 0
        self.rescind_parks = 0
        self.handoffs = 0
        self.failovers = 0
        for index, node in enumerate(self.nodes):
            breaker = CircuitBreaker(node.name)
            watchdog = Watchdog(
                env,
                node.san_card,
                interval_us=beat_interval_us,
                k_missed=k_missed,
                probe=self._make_probe(index),
                name=f"fd.watchdog:{node.name}",
            )
            watchdog.on_dead.append(lambda i=index: self._node_died(i))
            watchdog.on_partition.append(lambda i=index: self._node_partitioned(i))
            watchdog.on_recovered.append(lambda i=index: self._node_recovered(i))
            node.start_beats(watchdog, interval_us=beat_interval_us)
            self.breakers.append(breaker)
            self.watchdogs.append(watchdog)

    # -- supervision ---------------------------------------------------------
    def _make_probe(self, index: int):
        """Out-of-band classifier: cross the SAN, PIO-read the node's card."""

        def probe() -> Generator:
            yield self.env.timeout(PROBE_RTT_US)
            alive = yield from self.cluster.probe_node(index)
            return alive

        return probe

    def _breaker_transition(self, index: int, to: str, cause: str) -> None:
        obs = self.env.obs
        if obs is not None:
            node = self.nodes[index].name
            obs.count("frontdoor.breaker_transitions", node=node, to=to, cause=cause)
            obs.instant(f"node_{cause}", track=f"{node}:health", node=node)

    def _node_died(self, index: int) -> None:
        self.breakers[index].open()
        self._breaker_transition(index, "open", "dead")
        self.meter.mark_detected()
        self.failovers += 1
        self.env.process(
            self._failover(index), name=f"fd.failover:{self.nodes[index].name}"
        )

    def _node_partitioned(self, index: int) -> None:
        # the node still serves its streams; stop *new* placements only —
        # migrating off a healthy node would double-serve once it heals
        self.breakers[index].open()
        self._breaker_transition(index, "open", "partitioned")
        self.meter.mark_partition()
        self.meter.mark_detected()

    def _node_recovered(self, index: int) -> None:
        self.breakers[index].close()
        self._breaker_transition(index, "closed", "recovered")

    def healthy_views(self, exclude: frozenset[int] = frozenset()) -> list[NodeView]:
        """Nodes placement may currently consider."""
        return [
            NodeView(
                index=index,
                name=node.name,
                headroom=node.headroom,
                streams=self.ledger.placed_count(node.name),
            )
            for index, node in enumerate(self.nodes)
            if index not in exclude
            and self.breakers[index].closed
            and self.watchdogs[index].state != "dead"
        ]

    # -- admission -----------------------------------------------------------
    def admit_stream(
        self,
        spec: StreamSpec,
        service_time_us: float,
        file: MPEGFile,
        inject_gap_us: float = 1_000.0,
        prebuffer_frames: int = 0,
    ) -> Generator[object, object, Optional[str]]:
        """Process: admit one stream through the tiered front door.

        Returns the admission tier (``"full"`` / ``"degraded"``) or None
        if the stream parked.
        """
        self.admits_requested += 1
        # the cluster-wide correlation id: every span this stream's life
        # produces anywhere in the cluster (admit, place, RPC, migrate,
        # re-admit) carries it, which is what lets the Perfetto export
        # stitch a cross-node causal track out of per-node events
        corr = f"{spec.stream_id}#{self.admits_requested}"
        self._stream_info[spec.stream_id] = {
            "spec": spec,
            "service_time_us": service_time_us,
            "file": file,
            "inject_gap_us": inject_gap_us,
            "prebuffer_frames": prebuffer_frames,
            "corr": corr,
        }
        obs = self.env.obs
        t0 = self.env.now
        sp = (
            obs.begin(
                "admit",
                track=f"stream:{spec.stream_id}",
                category=CLUSTER_CATEGORY,
                corr=corr,
            )
            if obs is not None
            else None
        )
        tier = yield from self._place(spec.stream_id, parent_span=sp)
        if obs is not None:
            outcome = tier if tier is not None else "parked"
            obs.end(sp, tier=outcome)
            obs.count(
                "frontdoor.admissions", tier=outcome, policy=self.policy.name
            )
            obs.observe(
                "frontdoor.placement_latency_us",
                self.env.now - t0,
                policy=self.policy.name,
                tier=outcome,
            )
        return tier

    def _park(self, stream_id: str, reason: str, corr: str) -> None:
        self.ledger.park(stream_id)
        self.meter.parked.append(stream_id)
        obs = self.env.obs
        if obs is not None:
            obs.count("frontdoor.parks", reason=reason)
            obs.instant(
                "parked", track=f"stream:{stream_id}", corr=corr, reason=reason
            )

    def _place(
        self,
        stream_id: str,
        exclude: frozenset[int] = frozenset(),
        prefer: Optional[int] = None,
        parent_span: Optional[int] = None,
    ) -> Generator[object, object, Optional[str]]:
        """Process: walk the backpressure tiers across healthy nodes.

        On success the ledger records the placement and the tier is
        returned; on total refusal the stream parks. A node whose admit
        turned ambiguous is rescinded and then excluded from the rest of
        this placement — re-admitting where a just-undone producer may
        still be draining would race the route poll.
        """
        info = self._stream_info[stream_id]
        corr = info.get("corr", stream_id)
        obs = self.env.obs
        burned = set(exclude)
        for tier in ("full", "degraded"):
            views = self.healthy_views(frozenset(burned))
            order = self.policy.order(stream_id, views)
            if prefer is not None and prefer in order:
                order = [prefer] + [i for i in order if i != prefer]
            for index in order:
                node = self.nodes[index]
                token = f"admit:{stream_id}:{self._token_seq}"
                self._token_seq += 1
                payload = {
                    "spec": info["spec"],
                    "service_time_us": info["service_time_us"],
                    "tier": tier,
                    "degraded_fraction": DEGRADED_ADMIT_FRACTION,
                    "file": info["file"],
                    "inject_gap_us": info["inject_gap_us"],
                    "prebuffer_frames": info["prebuffer_frames"],
                    "corr": corr,
                }
                sp = (
                    obs.begin(
                        "place",
                        track=f"stream:{stream_id}",
                        parent=parent_span,
                        category=CLUSTER_CATEGORY,
                        corr=corr,
                        node=node.name,
                        tier=tier,
                    )
                    if obs is not None
                    else None
                )
                try:
                    reply = yield from self.rpc.call(
                        node.channel, node.exec_control, "admit", payload, token
                    )
                except RPCTimeout:
                    self.ambiguous_admits += 1
                    if obs is not None:
                        obs.end(sp, outcome="ambiguous")
                        obs.count(
                            "frontdoor.place_attempts",
                            outcome="ambiguous",
                            node=node.name,
                            tier=tier,
                        )
                    undone = yield from self._rescind(node, token, stream_id, corr)
                    if not undone:
                        # cannot prove the admit didn't land there: placing
                        # anywhere else could double-serve, so park
                        self.rescind_parks += 1
                        self._park(stream_id, "rescind", corr)
                        return None
                    burned.add(index)
                    continue
                outcome = "placed" if reply.get("ok") else "refused"
                if obs is not None:
                    obs.end(sp, outcome=outcome)
                    obs.count(
                        "frontdoor.place_attempts",
                        outcome=outcome,
                        node=node.name,
                        tier=tier,
                    )
                if reply.get("ok"):
                    self.ledger.place(stream_id, node.name, tier)
                    return tier
                # refused (no headroom / rescinded token): next candidate
        self._park(stream_id, "capacity", corr)
        return None

    def _rescind(
        self, node: ClusterNode, admit_token: str, stream_id: str, corr: str = ""
    ) -> Generator[object, object, bool]:
        """Process: resolve an ambiguous admit on *node*. True iff the
        front door now *knows* the node does not serve the stream."""
        token = f"{admit_token}/rescind"
        payload = {"admit_token": admit_token, "stream_id": stream_id, "corr": corr}
        obs = self.env.obs
        sp = (
            obs.begin(
                "rescind",
                track=f"stream:{stream_id}",
                category=CLUSTER_CATEGORY,
                corr=corr,
                node=node.name,
            )
            if obs is not None
            else None
        )
        try:
            reply = yield from self.rpc.call(
                node.channel, node.exec_control, "rescind", payload, token
            )
        except RPCTimeout:
            if obs is not None:
                obs.end(sp, outcome="timeout")
                obs.count("frontdoor.rescinds", outcome="timeout", node=node.name)
            return False
        resolved = bool(reply.get("ok"))
        if obs is not None:
            outcome = "resolved" if resolved else "refused"
            obs.end(sp, outcome=outcome)
            obs.count("frontdoor.rescinds", outcome=outcome, node=node.name)
        return resolved

    # -- failover ------------------------------------------------------------
    def _failover(self, index: int) -> Generator:
        """Process: re-home every stream the dead node was serving.

        Least loss-tolerant streams re-admit first (they need service
        most); admission order breaks ties. Streams no survivor can take
        park rather than vanish — the ledger accounts for every one.
        """
        node = self.nodes[index]
        victims = self.ledger.streams_on(node.name)
        obs = self.env.obs
        fsp = (
            obs.begin(
                "failover",
                track=f"{node.name}:health",
                category=CLUSTER_CATEGORY,
                node=node.name,
                victims=len(victims),
            )
            if obs is not None
            else None
        )

        def urgency(stream_id: str) -> tuple[float, int]:
            spec = self._stream_info[stream_id]["spec"]
            tolerance = spec.loss_x / spec.loss_y if spec.loss_y else 0.0
            return (tolerance, self.ledger.entry(stream_id).seq)

        victims.sort(key=urgency)
        for stream_id in victims:
            self.ledger.displace(stream_id)
        for stream_id in victims:
            corr = self._stream_info[stream_id].get("corr", stream_id)
            msp = (
                obs.begin(
                    "migrate",
                    track=f"stream:{stream_id}",
                    parent=fsp,
                    category=CLUSTER_CATEGORY,
                    corr=corr,
                    source=node.name,
                )
                if obs is not None
                else None
            )
            tier = yield from self._place(
                stream_id, exclude=frozenset({index}), parent_span=msp
            )
            if obs is not None:
                outcome = tier if tier is not None else "parked"
                obs.end(msp, tier=outcome)
                obs.count("frontdoor.migrations", outcome=outcome, source=node.name)
            if tier is not None:
                self.meter.migrated.append(stream_id)
                if tier == "degraded":
                    self.meter.degraded.append(stream_id)
        self.meter.mark_recovered()
        if obs is not None:
            obs.end(fsp, migrated=len(self.meter.migrated))

    # -- graceful inter-node handoff ------------------------------------------
    def handoff(
        self, stream_id: str, target_index: int
    ) -> Generator[object, object, Optional[str]]:
        """Process: move a live stream to *target_index* (rebalancing).

        Evicts through the source node's control executor (which drives
        the PR-2 park/retire machinery under the service), then re-admits
        preferring the target. Returns the new tier, or None if the
        stream ended up parked."""
        source_name = self.ledger.node_of(stream_id)
        if source_name is None:
            raise ValueError(f"stream {stream_id!r} is not placed anywhere")
        source = next(n for n in self.nodes if n.name == source_name)
        corr = self._stream_info[stream_id].get("corr", stream_id)
        obs = self.env.obs
        sp = (
            obs.begin(
                "handoff",
                track=f"stream:{stream_id}",
                category=CLUSTER_CATEGORY,
                corr=corr,
                source=source.name,
                target=self.nodes[target_index].name,
            )
            if obs is not None
            else None
        )
        token = f"evict:{stream_id}:{self._token_seq}"
        self._token_seq += 1
        try:
            yield from self.rpc.call(
                source.channel,
                source.exec_control,
                "evict",
                {"stream_id": stream_id, "corr": corr},
                token,
            )
        except RPCTimeout:
            # source unreachable: leave placement alone, let the watchdog
            # decide whether this is a partition or a death
            if obs is not None:
                obs.end(sp, outcome="source-unreachable")
                obs.count("frontdoor.handoff_attempts", outcome="source-unreachable")
            return self.ledger.entry(stream_id).tier
        self.ledger.displace(stream_id)
        self.handoffs += 1
        tier = yield from self._place(stream_id, prefer=target_index, parent_span=sp)
        if obs is not None:
            outcome = tier if tier is not None else "parked"
            obs.end(sp, tier=outcome)
            obs.count("frontdoor.handoff_attempts", outcome=outcome)
        return tier

    def __repr__(self) -> str:
        return (
            f"<FrontDoor nodes={len(self.nodes)} "
            f"placed={self.ledger.total_placed}>"
        )
