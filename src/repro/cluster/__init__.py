"""Scale-out cluster plane: N streaming nodes behind one front door.

The paper's testbed is a cluster — "a server configured as 16 quad
Pentium Pro nodes connected via I2O-based NIs" — and its scalability
argument lives or dies on admission control staying cheap and correct as
nodes come and go. This package adds that control plane on top of the
existing single-node machinery:

* :mod:`repro.cluster.placement` — pluggable stream-placement policies
  (consistent hashing / least-loaded / locality-aware);
* :mod:`repro.cluster.ledger` — the cluster-wide admission ledger with
  full → degraded → parked backpressure accounting;
* :mod:`repro.cluster.rpc` — hardened control RPCs (timeouts, capped
  backoff with jitter, token dedup, circuit breakers);
* :mod:`repro.cluster.node` — one supervised node: server + SAN card +
  2-card HA service + control executor + heartbeat beacon;
* :mod:`repro.cluster.frontdoor` — the fault-tolerant admission front
  door: watchdog per node, at-most-once placement, node failover;
* :mod:`repro.cluster.plane` — the whole assembly;
* :mod:`repro.cluster.scenarios` — node-loss chaos campaigns.
"""

from .frontdoor import DEGRADED_ADMIT_FRACTION, PROBE_RTT_US, FrontDoor
from .ledger import ClusterLedger, LedgerEntry, LedgerError
from .node import CONTROL_EXEC_US, NODE_BEAT_INTERVAL_US, ClusterNode
from .placement import (
    POLICIES,
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    LocalityAwarePolicy,
    NodeView,
    PlacementPolicy,
    make_policy,
)
from .plane import ClusterPlane
from .rpc import (
    CircuitBreaker,
    ClusterRPC,
    ControlChannel,
    NodeDown,
    RPCTimeout,
)
from .scenarios import CLUSTER_SCENARIOS

__all__ = [
    "CLUSTER_SCENARIOS",
    "CONTROL_EXEC_US",
    "DEGRADED_ADMIT_FRACTION",
    "NODE_BEAT_INTERVAL_US",
    "PROBE_RTT_US",
    "POLICIES",
    "CircuitBreaker",
    "ClusterLedger",
    "ClusterNode",
    "ClusterPlane",
    "ClusterRPC",
    "ConsistentHashPolicy",
    "ControlChannel",
    "FrontDoor",
    "LeastLoadedPolicy",
    "LedgerEntry",
    "LedgerError",
    "LocalityAwarePolicy",
    "NodeDown",
    "NodeView",
    "PlacementPolicy",
    "RPCTimeout",
    "make_policy",
]
