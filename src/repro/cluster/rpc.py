"""Hardened control-plane RPC between the front door and the nodes.

Control traffic (admission RPCs, node heartbeats) rides a logical
:class:`ControlChannel` per node — fixed one-way latency, lossy only under
a :class:`~repro.faults.FaultPlane` ``rpc-drop``/``rpc-dup`` window
matching the channel's name. The channel is deliberately *not* the SAN:
a front-door↔node partition must be expressible without touching the
NI-to-NI data path, and the watchdog's out-of-band health probe crosses
the SAN precisely so the two paths can fail independently.

:class:`ClusterRPC` adds the client-side hardening the tentpole names:

* **per-call timeouts** — a lost request or reply costs one timeout, not
  a hang;
* **capped exponential backoff with jitter** — retries space out
  (base · 2^k up to a cap, jittered from a named substream that is only
  drawn on an actual retry, so fault-free runs consume no randomness);
* **at-most-once execution** — every call carries a token; the node's
  reply cache (see :meth:`repro.cluster.node.ClusterNode.exec_control`)
  returns the cached reply for a retried or duplicated delivery instead
  of executing twice. The *placement* guarantee on top of this (a call
  whose every retry timed out) is the front door's rescind protocol.

:class:`CircuitBreaker` is the per-node valve the watchdog drives: opened
on suspicion (partition) or death, closed on recovery; the front door
skips open nodes when placing.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.obs.plane import CLUSTER_CATEGORY
from repro.sim import Environment, RandomStreams

__all__ = [
    "ControlChannel",
    "ClusterRPC",
    "CircuitBreaker",
    "RPCTimeout",
    "NodeDown",
]

#: one-way control-message latency, µs (a switched-Ethernet hop plus the
#: host-side demux — control messages are small)
CONTROL_LATENCY_US = 200.0

#: per-attempt reply deadline, µs
DEFAULT_TIMEOUT_US = 50_000.0

#: retry schedule: base · 2^k, capped, jittered
DEFAULT_MAX_ATTEMPTS = 4
BACKOFF_BASE_US = 10_000.0
BACKOFF_CAP_US = 200_000.0


class RPCTimeout(Exception):
    """Every attempt of a call timed out; the outcome is ambiguous."""


class NodeDown(Exception):
    """The target node is crashed: the request falls on dead silicon."""


class ControlChannel:
    """One logical front-door↔node control link."""

    def __init__(
        self, env: Environment, name: str, latency_us: float = CONTROL_LATENCY_US
    ) -> None:
        if latency_us <= 0:
            raise ValueError("channel latency must be positive")
        self.env = env
        self.name = name
        self.latency_us = latency_us
        self.messages_lost = 0
        self.messages_duplicated = 0

    def lost(self) -> bool:
        """Fault oracle: is this message discarded in flight?"""
        plane = self.env.fault_plane
        if plane is not None and plane.rpc_dropped(self.name):
            self.messages_lost += 1
            return True
        return False

    def duplicated(self) -> bool:
        """Fault oracle: is this message delivered twice?"""
        plane = self.env.fault_plane
        if plane is not None and plane.rpc_duplicated(self.name):
            self.messages_duplicated += 1
            return True
        return False

    def __repr__(self) -> str:
        return f"<ControlChannel {self.name!r} {self.latency_us}us>"


class CircuitBreaker:
    """Per-node admission valve driven by the watchdog."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = "closed"
        self.opens = 0

    @property
    def closed(self) -> bool:
        return self.state == "closed"

    def open(self) -> None:
        if self.state != "open":
            self.state = "open"
            self.opens += 1

    def close(self) -> None:
        self.state = "closed"

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name!r} {self.state}>"


#: a node-side handler: (op, payload, token) -> generator returning a reply
Handler = Callable[[str, dict, str], Generator]


class ClusterRPC:
    """Retrying, timing-out, jitter-backing-off control-plane caller."""

    def __init__(
        self,
        env: Environment,
        rng: Optional[RandomStreams] = None,
        timeout_us: float = DEFAULT_TIMEOUT_US,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base_us: float = BACKOFF_BASE_US,
        backoff_cap_us: float = BACKOFF_CAP_US,
    ) -> None:
        if timeout_us <= 0 or max_attempts < 1:
            raise ValueError("need a positive timeout and at least one attempt")
        self.env = env
        #: jitter source; drawn only when a retry actually happens, so a
        #: fault-free run consumes no randomness from it
        self.rng = rng
        self.timeout_us = timeout_us
        self.max_attempts = max_attempts
        self.backoff_base_us = backoff_base_us
        self.backoff_cap_us = backoff_cap_us
        # telemetry
        self.calls = 0
        self.attempts = 0
        self.timeouts = 0
        self.retries = 0
        self.dup_deliveries = 0
        self.replies = 0
        self.failures = 0

    def _backoff_us(self, attempt: int) -> float:
        delay = min(self.backoff_cap_us, self.backoff_base_us * (2.0 ** attempt))
        if self.rng is not None:
            # jitter in [1.0, 1.5): de-synchronizes retry storms without
            # ever shrinking the spacing below the deterministic floor
            delay *= 1.0 + 0.5 * float(self.rng.stream("cluster.rpc.jitter").random())
        return delay

    def call(
        self,
        channel: ControlChannel,
        handler: Handler,
        op: str,
        payload: dict,
        token: str,
    ) -> Generator[Any, Any, dict]:
        """Process: invoke *op* on the node behind *channel*.

        Returns the node's reply dict, or raises :class:`RPCTimeout` once
        every attempt has burned its deadline — at which point the caller
        knows only that the call *may* have executed (the reply, not the
        request, may be what was lost). Resolution of that ambiguity is
        the caller's job (the front door rescinds).
        """
        env = self.env
        obs = env.obs
        self.calls += 1
        sp = None
        if obs is not None:
            obs.count("rpc.calls", op=op, channel=channel.name)
            fields = {"token": token}
            corr = payload.get("corr")
            if corr:
                fields["corr"] = corr
            sp = obs.begin(
                f"rpc:{op}",
                track=f"rpc:{channel.name}",
                category=CLUSTER_CATEGORY,
                **fields,
            )
        for attempt in range(self.max_attempts):
            self.attempts += 1
            if obs is not None:
                obs.count("rpc.attempts", op=op, channel=channel.name)
            if channel.lost():
                # request leg discarded: burn the full deadline
                self.timeouts += 1
                if obs is not None:
                    obs.count("rpc.timeouts", op=op, channel=channel.name, leg="request")
                yield env.timeout(self.timeout_us)
            else:
                yield env.timeout(channel.latency_us)
                try:
                    if channel.duplicated():
                        # a retrying fabric delivered the request twice;
                        # the node's reply cache must absorb the extra one
                        self.dup_deliveries += 1
                        if obs is not None:
                            obs.count("rpc.dup_deliveries", channel=channel.name)
                        yield from handler(op, payload, token)
                    reply = yield from handler(op, payload, token)
                except NodeDown:
                    # dead node: the request got there and died with it
                    self.timeouts += 1
                    if obs is not None:
                        obs.count(
                            "rpc.timeouts", op=op, channel=channel.name, leg="node-down"
                        )
                    yield env.timeout(max(0.0, self.timeout_us - channel.latency_us))
                else:
                    if channel.lost():
                        # reply leg discarded: the op EXECUTED but we can't
                        # know that — the ambiguous case rescind exists for
                        self.timeouts += 1
                        if obs is not None:
                            obs.count(
                                "rpc.timeouts", op=op, channel=channel.name, leg="reply"
                            )
                        yield env.timeout(
                            max(0.0, self.timeout_us - channel.latency_us)
                        )
                    else:
                        yield env.timeout(channel.latency_us)
                        self.replies += 1
                        if obs is not None:
                            obs.count("rpc.replies", op=op, channel=channel.name)
                            obs.end(sp, outcome="reply", attempts=attempt + 1)
                        return reply
            if attempt + 1 < self.max_attempts:
                self.retries += 1
                backoff = self._backoff_us(attempt)
                if obs is not None:
                    obs.count("rpc.retries", op=op, channel=channel.name)
                    obs.observe("rpc.backoff_us", backoff, op=op)
                yield env.timeout(backoff)
        self.failures += 1
        if obs is not None:
            obs.count("rpc.failures", op=op, channel=channel.name)
            obs.end(sp, outcome="timeout", attempts=self.max_attempts)
        raise RPCTimeout(
            f"{op} on {channel.name} timed out after {self.max_attempts} attempts"
        )

    def telemetry(self) -> dict[str, int]:
        return {
            "calls": self.calls,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "dup_deliveries": self.dup_deliveries,
            "replies": self.replies,
            "failures": self.failures,
        }
