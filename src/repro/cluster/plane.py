"""Top-level cluster assembly: nodes + SAN + front door, wired for chaos.

:class:`ClusterPlane` is what an experiment builds: the PR-5
:class:`~repro.server.cluster.Cluster` topology (SAN switch, N server
nodes, SAN-facing i960 cards), each node wrapped as a
:class:`~repro.cluster.node.ClusterNode` (its own 2-card HA streaming
service and control channel), and one
:class:`~repro.cluster.frontdoor.FrontDoor` supervising the lot.

The plane also wires node-level fault detection into the cluster
:class:`~repro.metrics.perfmeter.RecoveryMeter`: the *fault* timestamp is
stamped the instant any SAN card crashes (so detection latency measures
the watchdog, not the injection plumbing); partition and brownout
scenarios — which crash nothing — stamp it themselves from the scenario
installer.
"""

from __future__ import annotations

from typing import Union

from repro.server.cluster import Cluster
from repro.sim import Environment, RandomStreams

from .frontdoor import FrontDoor
from .node import ClusterNode
from .placement import PlacementPolicy, make_policy
from .rpc import ClusterRPC

__all__ = ["ClusterPlane"]


class ClusterPlane:
    """N supervised streaming nodes behind one admission front door."""

    def __init__(
        self,
        env: Environment,
        n_nodes: int = 3,
        policy: Union[str, PlacementPolicy] = "least-loaded",
        n_cpus_per_node: int = 1,
        n_cards_per_node: int = 2,
        rng: RandomStreams | None = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("a cluster plane needs at least two nodes")
        self.env = env
        self.cluster = Cluster(env, n_nodes, n_cpus_per_node=n_cpus_per_node)
        self.nodes = [
            ClusterNode(env, self.cluster, i, n_cards=n_cards_per_node)
            for i in range(n_nodes)
        ]
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        self.rpc = ClusterRPC(env, rng=rng)
        self.frontdoor = FrontDoor(env, self.cluster, self.nodes, self.rpc, policy)
        for node in self.nodes:
            # stamp the cluster-level fault instant on the first card death
            # (mark_fault is first-wins, so N cards crashing at once still
            # record one fault)
            node.san_card.on_crash.append(self._on_node_fault)

    def _on_node_fault(self) -> None:
        self.frontdoor.meter.mark_fault(self.total_violations)

    # -- cluster-wide observables --------------------------------------------
    @property
    def ledger(self):
        return self.frontdoor.ledger

    @property
    def meter(self):
        return self.frontdoor.meter

    @property
    def total_violations(self) -> int:
        return sum(node.service.total_violations for node in self.nodes)

    @property
    def total_frames_delivered(self) -> int:
        return sum(
            client.frames_received
            for node in self.nodes
            for client in node.service.clients.values()
        )

    def node_named(self, name: str) -> ClusterNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def service_of(self, stream_id: str):
        """The HA service currently serving *stream_id* (None if unplaced)."""
        node_name = self.ledger.node_of(stream_id)
        if node_name is None:
            return None
        return self.node_named(node_name).service

    def account(self) -> dict[str, int]:
        """Ledger census plus the 'unaccounted' count the chaos scenarios
        are scored on (streams left displaced at scoring time)."""
        census = self.ledger.account()
        census["unaccounted"] = census["displaced"]
        return census

    def publish_metrics(self) -> None:
        """End-of-run gauges the SLO engine evaluates (no-op when the run
        is uninstrumented). Milestone gauges appear only when the milestone
        was actually stamped, so an unmeasured budget reads as MISSING —
        a failing verdict — rather than silently passing at zero."""
        obs = self.env.obs
        if obs is None:
            return
        meter = self.meter
        obs.registry.gauge(
            "cluster.fault_marked", 0.0 if meter.fault_at_us is None else 1.0
        )
        obs.registry.gauge(
            "cluster.recovered", 0.0 if meter.recovered_at_us is None else 1.0
        )
        det = meter.detection_latency_us
        if det is not None:
            obs.registry.gauge("cluster.detection_ms", det / 1000.0)
        mttr = meter.mttr_us
        if mttr is not None:
            obs.registry.gauge("cluster.mttr_ms", mttr / 1000.0)
        for state, count in sorted(self.account().items()):
            obs.registry.gauge("cluster.ledger", float(count), state=state)
        obs.registry.gauge("cluster.violations", float(self.total_violations))
        for key, value in self.rpc.telemetry().items():
            obs.registry.gauge(f"cluster.rpc.{key}", float(value))
        absorbed = sum(node.dup_suppressed for node in self.nodes)
        obs.registry.gauge(
            "cluster.rpc.dups_unabsorbed",
            float(max(0, self.rpc.dup_deliveries - absorbed)),
        )
        for node in self.nodes:
            obs.registry.gauge(
                "cluster.node.double_execs", float(node.double_execs), node=node.name
            )
            obs.registry.gauge(
                "cluster.node.placed",
                float(self.ledger.placed_count(node.name)),
                node=node.name,
            )

    def __repr__(self) -> str:
        return f"<ClusterPlane nodes={len(self.nodes)} policy={self.policy!r}>"
