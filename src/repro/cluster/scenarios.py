"""Cluster-scale chaos scenarios (node loss under load).

Same :class:`~repro.faults.ChaosScenario` shape as the card-level
campaigns, but the *service* argument handed to each installer is a
:class:`~repro.cluster.plane.ClusterPlane` and the blast radius is a
whole node:

* ``node-crash`` — a node's scheduler cards *and* SAN card die together.
  The front-door watchdog must declare the node dead within the 800 ms
  budget and re-admit or park every ledgered stream (zero unaccounted).
* ``fd-partition`` — the control channel between the front door and one
  node goes black while the node keeps serving. The SAN probe still
  answers, so the watchdog must classify *partitioned*, open the circuit
  breaker (no new placements), and migrate nothing.
* ``brownout`` — a slow node, not a dead one: its control channel drops
  half its messages and its producer disks run 20x slow. Exercises the
  RPC retry/backoff path and the shed hooks without any crash.

``baseline`` installs nothing and must match an unfaulted run exactly.
"""

from __future__ import annotations

from typing import Any

from repro.faults import FaultPlane
from repro.faults.scenarios import ChaosScenario

__all__ = ["CLUSTER_SCENARIOS"]


def _install_nothing(
    plane: FaultPlane, cplane: Any, start_us: float, end_us: float
) -> None:
    """The control: no fault windows, no randomness drawn."""


def _target_node(cplane: Any):
    """The node the chaos aims at: n1 when it exists (keeps n0's placement
    untouched in small clusters), else the last node."""
    return cplane.nodes[min(1, len(cplane.nodes) - 1)]


def _install_node_crash(
    plane: FaultPlane, cplane: Any, start_us: float, end_us: float
) -> None:
    """One whole node dies: scheduler cards + SAN card, permanently.

    The card list is resolved at fire time (a lambda), because the HA
    service may still be placing streams when the scenario installs.
    The plane's node-crash event crashes every card in one tick, which
    fires the plane wiring that stamps the cluster fault instant.
    """
    target = _target_node(cplane)
    plane.schedule_node_crash(
        lambda: target.critical_cards, at_us=start_us, node=target.name
    )


def _mark_fault_at(plane: FaultPlane, cplane: Any, start_us: float) -> None:
    """Partition/brownout crash nothing, so no on_crash hook stamps the
    fault instant; schedule the stamp at fault onset instead."""
    plane.env.schedule_callback(
        start_us - plane.env.now,
        lambda: cplane.meter.mark_fault(cplane.total_violations),
        name="fault.mark:cluster",
    )


def _install_fd_partition(
    plane: FaultPlane, cplane: Any, start_us: float, end_us: float
) -> None:
    """Total front-door↔node control partition; the node keeps serving."""
    target = _target_node(cplane)
    plane.inject_rpc_drop(target.channel.name, start_us, end_us, rate=1.0)
    _mark_fault_at(plane, cplane, start_us)


def _install_brownout(
    plane: FaultPlane, cplane: Any, start_us: float, end_us: float
) -> None:
    """A slow node: lossy control path + 20x slower producer disks."""
    target = _target_node(cplane)
    plane.inject_rpc_drop(target.channel.name, start_us, end_us, rate=0.5)
    plane.inject_disk_latency(f"{target.name}.*disk*", start_us, end_us, mult=20.0)
    _mark_fault_at(plane, cplane, start_us)


CLUSTER_SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="baseline",
            description="no faults (control: per-node Figure 9 behaviour)",
            start_frac=0.5,
            end_frac=0.5,
            installer=_install_nothing,
        ),
        ChaosScenario(
            name="node-crash",
            description="one node's cards all die; streams re-home or park",
            start_frac=0.4,
            end_frac=1.0,
            installer=_install_node_crash,
        ),
        ChaosScenario(
            name="fd-partition",
            description="front-door control link to one node goes black",
            start_frac=0.4,
            end_frac=0.6,
            installer=_install_fd_partition,
        ),
        ChaosScenario(
            name="brownout",
            description="one node runs slow: 50% control loss, 20x disks",
            start_frac=0.4,
            end_frac=0.7,
            installer=_install_brownout,
        ),
    )
}
