"""One cluster member: a server node wrapped for front-door supervision.

A :class:`ClusterNode` owns

* the underlying :class:`~repro.server.node.ServerNode` and its SAN-facing
  i960 card (both built by :class:`~repro.server.cluster.Cluster`),
* a node-local client edge switch and a 2-card
  :class:`~repro.server.failover.HAStreamingService` — so the PR-2
  intra-node failover plane (per-card watchdogs, checkpoint mirroring,
  headroom-first migration) keeps working *inside* every cluster member,
* the :class:`~repro.cluster.rpc.ControlChannel` to the front door, the
  node-side control executor with its **at-most-once reply cache**, and
  the heartbeat sender the front door's watchdog listens to.

Node death is *cards dying*, not objects disappearing: a FaultPlane
``schedule_node_crash`` crashes the scheduler cards and the SAN card
(:attr:`ClusterNode.critical_cards`), after which the node stops beating,
its control executor raises :class:`~repro.cluster.rpc.NodeDown`, the SAN
health probe reports dead, and the service's own watchdogs park every
local stream (retiring the producers). Producer cards are deliberately
left out — their frames simply have nowhere to go, which is the
observable symptom, not the mechanism.
"""

from __future__ import annotations

from typing import Generator

from repro.hw.ethernet import EthernetSwitch
from repro.hw.nic import I960RDCard
from repro.obs.plane import CLUSTER_CATEGORY
from repro.server.cluster import Cluster
from repro.server.failover import HAStreamingService
from repro.sim import Environment

from .rpc import ControlChannel, NodeDown

__all__ = ["ClusterNode", "CONTROL_EXEC_US", "NODE_BEAT_INTERVAL_US"]

#: host-side execution cost of one control op (decode + ledger touch), µs
CONTROL_EXEC_US = 50.0

#: node → front-door heartbeat period, µs. With the watchdog's default
#: K=3 missed beats + 20 % grace this makes worst-case node-loss
#: detection 3·200 ms + 40 ms = 640 ms plus one probe round trip —
#: inside the 800 ms budget the cluster experiment asserts.
NODE_BEAT_INTERVAL_US = 200_000.0


class ClusterNode:
    """A supervised server node behind the admission front door."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        index: int,
        n_cards: int = 2,
    ) -> None:
        self.env = env
        self.index = index
        self.server = cluster.nodes[index]
        self.san_card: I960RDCard = cluster.san_cards[index]
        self.name = self.server.name
        #: node-local delivery edge (clients hang off this, not the SAN)
        self.edge = EthernetSwitch(env, name=f"{self.name}.edge")
        self.service = HAStreamingService(env, self.server, self.edge, n_cards=n_cards)
        self.channel = ControlChannel(env, name=f"fd<->{self.name}")
        #: at-most-once layer: token -> reply already produced
        self._replies: dict[str, dict] = {}
        #: admit tokens rescinded before ever executing — a late duplicate
        #: of such an admit must refuse, not place
        self._poisoned: set[str] = set()
        self.beats_sent = 0
        self.dup_suppressed = 0
        self.rescinds_undone = 0
        self.streams_admitted = 0
        #: queued-but-unsent frames discarded by rescind/evict teardown
        self.frames_discarded = 0
        #: tokens whose op actually executed (committed) on this node —
        #: the sentinel behind the at-most-once SLO: a token appearing
        #: here twice is a double execution, which must never happen
        self._executed: set[str] = set()
        self.double_execs = 0

    # -- health --------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self.san_card.crashed

    @property
    def critical_cards(self) -> list[I960RDCard]:
        """The cards a node-level crash takes down: schedulers + SAN."""
        return [rt.card for rt in self.service.runtimes] + [self.san_card]

    @property
    def headroom(self) -> float:
        """Summed admission headroom of the live scheduler cards."""
        if self.crashed:
            return 0.0
        return sum(
            rt.admission.headroom()
            for rt in self.service.runtimes
            if not rt.card.crashed
        )

    # -- heartbeats ----------------------------------------------------------
    def start_beats(self, watchdog, interval_us: float = NODE_BEAT_INTERVAL_US) -> None:
        """Beacon toward the front door's *watchdog* over the control
        channel — so a channel partition silences the node exactly like a
        crash does, and only the out-of-band SAN probe can tell the two
        apart."""

        def loop() -> Generator:
            while True:
                yield self.env.timeout(interval_us)
                if self.crashed:
                    # skip, don't retire: a flapping node that resets inside
                    # the watchdog deadline must resume beating (ride-out)
                    continue
                self.beats_sent += 1
                obs = self.env.obs
                if obs is not None:
                    obs.count("node.beats_sent", node=self.name)
                if not self.channel.lost():
                    self.env.schedule_callback(
                        self.channel.latency_us,
                        watchdog.record_beat,
                        name=f"beat:{self.name}",
                    )

        self.env.process(loop(), name=f"beat:{self.name}")

    # -- the control executor ------------------------------------------------
    def exec_control(self, op: str, payload: dict, token: str) -> Generator:
        """Process: execute one control op exactly once per token.

        A retried or fabric-duplicated delivery of a token that already
        executed returns the cached reply without re-executing — the
        node-side half of at-most-once placement.
        """
        obs = self.env.obs
        if self.crashed:
            raise NodeDown(self.name)
        cached = self._replies.get(token)
        if cached is not None:
            self.dup_suppressed += 1
            if obs is not None:
                obs.count("node.dup_suppressed", node=self.name, op=op)
            return cached
        sp = None
        if obs is not None:
            fields = {"token": token}
            corr = payload.get("corr")
            if corr:
                fields["corr"] = corr
            sp = obs.begin(
                f"ctl:{op}",
                track=f"{self.name}:control",
                category=CLUSTER_CATEGORY,
                **fields,
            )
        yield self.env.timeout(CONTROL_EXEC_US)
        if self.crashed:
            # died mid-decode: the op never commits
            if obs is not None:
                obs.end(sp, outcome="node-down")
            raise NodeDown(self.name)
        if token in self._executed:
            # must be unreachable (the reply cache intercepts repeats);
            # counted rather than asserted so the SLO engine can prove it
            self.double_execs += 1
            if obs is not None:
                obs.count("node.double_execs", node=self.name, op=op)
        self._executed.add(token)
        reply = self._execute(op, payload, token)
        self._replies[token] = reply
        if obs is not None:
            obs.end(sp, outcome="ok" if reply.get("ok") else "refused")
            obs.count(
                "node.control_ops",
                node=self.name,
                op=op,
                outcome="ok" if reply.get("ok") else "refused",
            )
        return reply

    def _execute(self, op: str, payload: dict, token: str) -> dict:
        if op == "admit":
            return self._admit(payload, token)
        if op == "rescind":
            return self._rescind(payload)
        if op == "evict":
            return self._evict(payload)
        return {"ok": False, "reason": f"unknown control op {op!r}"}

    def _admit(self, payload: dict, token: str) -> dict:
        if token in self._poisoned:
            # the front door gave up on this admit and rescinded it while
            # the request was lost; a late duplicate must not place
            return {"ok": False, "reason": "admit token rescinded"}
        spec = payload["spec"]
        stream_id = spec.stream_id
        cost_us = payload["service_time_us"]
        tier = payload.get("tier", "full")
        if tier == "degraded":
            cost_us *= payload.get("degraded_fraction", 0.5)
        client = f"client_{stream_id}"
        if client not in self.service.clients:
            self.service.attach_client(client)
        # a stream rescinded off this node earlier may come back; clear
        # the local retirement marker before re-opening
        self.service.parked_streams.discard(stream_id)
        try:
            self.service.open_stream(spec, client, service_time_us=cost_us)
        except RuntimeError as exc:
            return {"ok": False, "reason": str(exc)}
        if tier == "degraded":
            # anchor-frames-only rendition: the producer sheds B-frames
            self.service.degraded_streams.add(stream_id)
        self.service.start_producer(
            payload["file"],
            inject_gap_us=payload.get("inject_gap_us", 1_000.0),
            prebuffer_frames=payload.get("prebuffer_frames", 0),
        )
        self.streams_admitted += 1
        corr = payload.get("corr")
        if corr:
            self.service.corr_of[stream_id] = corr
        obs = self.env.obs
        if obs is not None:
            obs.count("node.streams_admitted", node=self.name, tier=tier)
        return {"ok": True, "node": self.name, "tier": tier}

    def _rescind(self, payload: dict) -> dict:
        """Resolve an ambiguous admit: undo it if it executed, poison the
        token if it never arrived. Either way the front door afterwards
        *knows* this node does not serve the stream."""
        admit_token = payload["admit_token"]
        prior = self._replies.get(admit_token)
        if prior is None or not prior.get("ok"):
            self._poisoned.add(admit_token)
            return {"ok": True, "undone": False}
        self._undo_stream(payload["stream_id"])
        self.rescinds_undone += 1
        return {"ok": True, "undone": True}

    def _evict(self, payload: dict) -> dict:
        """Graceful removal (handoff source side)."""
        stream_id = payload["stream_id"]
        if self.service.runtime_of(stream_id) is None:
            return {"ok": False, "reason": f"stream {stream_id!r} not here"}
        self._undo_stream(stream_id)
        return {"ok": True, "node": self.name}

    def _undo_stream(self, stream_id: str) -> None:
        """Remove every local trace of a stream (idempotent)."""
        service = self.service
        runtime = service.runtime_of(stream_id)
        # parked marker first: the producer retires on its next route poll
        service.parked_streams.add(stream_id)
        if runtime is not None:
            if stream_id in runtime.scheduler.streams:
                # queued frame bodies go down with the eviction — drain
                # before teardown (remove_stream refuses a non-empty queue)
                queue = runtime.scheduler.queues[stream_id]
                obs = self.env.obs
                while len(queue):
                    queue.pop(runtime.scheduler.ops)
                    self.frames_discarded += 1
                    if obs is not None:
                        obs.count("node.frames_discarded", node=self.name)
                runtime.scheduler.remove_stream(stream_id)
            try:
                runtime.admission.release(stream_id)
            except KeyError:
                pass
        service._runtime_of.pop(stream_id, None)
        service._spec_of.pop(stream_id, None)
        service._service_time_of.pop(stream_id, None)
        if stream_id in service.placement_order:
            service.placement_order.remove(stream_id)
        service.degraded_streams.discard(stream_id)

    def __repr__(self) -> str:
        return (
            f"<ClusterNode {self.name!r} crashed={self.crashed} "
            f"admitted={self.streams_admitted}>"
        )
