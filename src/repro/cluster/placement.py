"""Stream-placement policies for the cluster front door.

The paper leaves cluster-scale placement open ("admission control and
online request scheduling" as the scalability levers); this module gives
the front door its pluggable policy seam. A policy sees a snapshot of the
healthy nodes (:class:`NodeView`) and returns a *preference order* — the
front door then walks that order through admission, so a policy never has
to know about headroom rejections, circuit breakers, or backpressure
tiers; it only ranks.

Three policies, the classic trade-off triangle:

* ``hash`` — consistent hashing over a SHA-256 ring. Placement is a pure
  function of the stream id and the node set: no shared load state, and
  node loss only remaps the lost node's arc.
* ``least-loaded`` — most admission headroom first. Best packing, but
  requires the (front-door-local) load ledger.
* ``locality`` — streams sharing a content group (the stream id's prefix
  before the first ``-``) hash to the same home node, so one title's
  sessions share a node's disk cache; ties and overflow fall back to
  headroom order.

All policies are deterministic: same inputs, same order — a requirement
for the byte-identical cluster experiment runs.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "NodeView",
    "PlacementPolicy",
    "ConsistentHashPolicy",
    "LeastLoadedPolicy",
    "LocalityAwarePolicy",
    "POLICIES",
    "make_policy",
]


@dataclass(frozen=True)
class NodeView:
    """One healthy node as the placement policy sees it."""

    index: int
    name: str
    #: remaining admissible mandatory utilization (summed over live cards)
    headroom: float
    #: streams the cluster ledger currently places on this node
    streams: int


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (first 8 bytes of SHA-256)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class PlacementPolicy:
    """Ranks candidate nodes for one stream (most preferred first)."""

    name = "base"

    def order(self, stream_id: str, nodes: Sequence[NodeView]) -> list[int]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ConsistentHashPolicy(PlacementPolicy):
    """SHA-256 ring with virtual nodes; walk clockwise from the stream."""

    name = "hash"

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("need at least one virtual node per node")
        self.replicas = replicas

    def _ring(self, nodes: Sequence[NodeView]) -> list[tuple[int, int]]:
        ring = sorted(
            (_ring_hash(f"{node.name}#{r}"), node.index)
            for node in nodes
            for r in range(self.replicas)
        )
        return ring

    def order(self, stream_id: str, nodes: Sequence[NodeView]) -> list[int]:
        if not nodes:
            return []
        ring = self._ring(nodes)
        start = bisect_right(ring, (_ring_hash(stream_id), -1))
        seen: list[int] = []
        for pos in range(len(ring)):
            index = ring[(start + pos) % len(ring)][1]
            if index not in seen:
                seen.append(index)
        return seen


class LeastLoadedPolicy(PlacementPolicy):
    """Most admission headroom first; node index breaks ties."""

    name = "least-loaded"

    def order(self, stream_id: str, nodes: Sequence[NodeView]) -> list[int]:
        return [
            node.index
            for node in sorted(nodes, key=lambda n: (-n.headroom, n.index))
        ]


class LocalityAwarePolicy(PlacementPolicy):
    """Content-group affinity first, headroom among the rest.

    The group is the stream id's prefix before the first ``-`` (streams of
    one media title share it), hashed onto the same consistent ring as
    ``hash`` — so a title's sessions co-locate, and the fallback for a
    full home node is load-aware rather than ring order.
    """

    name = "locality"

    def __init__(self, replicas: int = 64) -> None:
        self._ring = ConsistentHashPolicy(replicas)

    @staticmethod
    def group_of(stream_id: str) -> str:
        return stream_id.split("-", 1)[0]

    def order(self, stream_id: str, nodes: Sequence[NodeView]) -> list[int]:
        if not nodes:
            return []
        home = self._ring.order(self.group_of(stream_id), nodes)[0]
        rest = LeastLoadedPolicy().order(stream_id, nodes)
        return [home] + [index for index in rest if index != home]


POLICIES: dict[str, type] = {
    ConsistentHashPolicy.name: ConsistentHashPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    LocalityAwarePolicy.name: LocalityAwarePolicy,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by name, naming the valid set on a miss."""
    cls = POLICIES.get(name)
    if cls is None:
        valid = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown placement policy {name!r}; valid: {valid}")
    return cls()
