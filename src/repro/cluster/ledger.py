"""The cluster-wide admission ledger.

One book of record for where every stream lives. The front door is the
only writer; every transition goes through a named method so the ledger
can enforce the two invariants the chaos scenarios are scored against:

* **no double-place** — :meth:`ClusterLedger.place` refuses a stream that
  is already placed. A retried admission that slipped through the RPC
  dedup layers still cannot put one stream on two nodes; it dies here,
  loudly, instead.
* **no unaccounted streams** — every stream the front door ever saw ends
  the run in exactly one of ``placed`` / ``parked`` / ``lost`` (``displaced``
  is the transient between a node dying and its streams being re-homed;
  any ``displaced`` entry left at scoring time is an accounting bug and
  the experiment reports it as *unaccounted*).

Per-node placement counts are maintained incrementally on every
transition *and* recomputable from the entries; :meth:`ClusterLedger.check`
compares the two, which is what the property test interleaves
admit/evict/migrate/crash against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ClusterLedger", "LedgerEntry", "LedgerError"]

#: legal entry states
PLACED = "placed"
DISPLACED = "displaced"
PARKED = "parked"
LOST = "lost"


class LedgerError(RuntimeError):
    """An illegal ledger transition (e.g. a double-place)."""


@dataclass
class LedgerEntry:
    """Where one stream currently lives."""

    stream_id: str
    state: str
    #: serving node name (None unless placed)
    node: Optional[str]
    #: admission tier while placed: "full" | "degraded"
    tier: str
    #: admission order (FIFO tiebreak for failover re-homing)
    seq: int


class ClusterLedger:
    """Single-writer stream placement book with self-checking counters."""

    def __init__(self) -> None:
        self._entries: dict[str, LedgerEntry] = {}
        #: incrementally maintained per-node placed counts
        self._placed_per_node: dict[str, int] = {}
        self._seq = 0
        #: transition tally (reports + determinism checks)
        self.transitions: dict[str, int] = {}

    # -- transitions ---------------------------------------------------------
    def place(self, stream_id: str, node: str, tier: str = "full") -> LedgerEntry:
        """Record *stream_id* as served by *node*.

        Legal from nowhere (fresh admission), ``displaced`` (failover
        re-homing), and ``parked`` (backpressure released). A stream that
        is already ``placed`` raises — this is the double-place backstop.
        """
        if tier not in ("full", "degraded"):
            raise LedgerError(f"unknown admission tier {tier!r}")
        entry = self._entries.get(stream_id)
        if entry is not None and entry.state == PLACED:
            raise LedgerError(
                f"stream {stream_id!r} is already placed on {entry.node!r}: "
                f"refusing double-place onto {node!r}"
            )
        if entry is None:
            entry = LedgerEntry(stream_id, PLACED, node, tier, self._seq)
            self._seq += 1
            self._entries[stream_id] = entry
        else:
            entry.state, entry.node, entry.tier = PLACED, node, tier
        self._placed_per_node[node] = self._placed_per_node.get(node, 0) + 1
        self._bump("place")
        return entry

    def displace(self, stream_id: str) -> LedgerEntry:
        """The serving node died under the stream; placement is void."""
        entry = self._placed(stream_id, "displace")
        self._placed_per_node[entry.node] -= 1
        entry.state, entry.node = DISPLACED, None
        self._bump("displace")
        return entry

    def park(self, stream_id: str) -> LedgerEntry:
        """Backpressure: the stream holds no capacity anywhere.

        Legal from any state (an admission that never placed parks too);
        parking an already-parked stream is a no-op rather than an error —
        both the rescind path and the capacity path may reach it.
        """
        entry = self._entries.get(stream_id)
        if entry is None:
            entry = LedgerEntry(stream_id, PARKED, None, "full", self._seq)
            self._seq += 1
            self._entries[stream_id] = entry
        else:
            if entry.state == PLACED:
                self._placed_per_node[entry.node] -= 1
            entry.state, entry.node = PARKED, None
        self._bump("park")
        return entry

    def mark_lost(self, stream_id: str) -> LedgerEntry:
        """Explicitly write a stream off (terminal)."""
        entry = self._entries.get(stream_id)
        if entry is None:
            entry = LedgerEntry(stream_id, LOST, None, "full", self._seq)
            self._seq += 1
            self._entries[stream_id] = entry
        else:
            if entry.state == PLACED:
                self._placed_per_node[entry.node] -= 1
            entry.state, entry.node = LOST, None
        self._bump("lost")
        return entry

    def evict(self, stream_id: str) -> None:
        """The stream departed normally; drop it from the book."""
        entry = self._placed(stream_id, "evict")
        self._placed_per_node[entry.node] -= 1
        del self._entries[stream_id]
        self._bump("evict")

    def _placed(self, stream_id: str, verb: str) -> LedgerEntry:
        entry = self._entries.get(stream_id)
        if entry is None or entry.state != PLACED:
            state = "absent" if entry is None else entry.state
            raise LedgerError(f"cannot {verb} {stream_id!r}: stream is {state}")
        return entry

    def _bump(self, kind: str) -> None:
        self.transitions[kind] = self.transitions.get(kind, 0) + 1

    # -- queries -------------------------------------------------------------
    def entry(self, stream_id: str) -> Optional[LedgerEntry]:
        return self._entries.get(stream_id)

    def node_of(self, stream_id: str) -> Optional[str]:
        entry = self._entries.get(stream_id)
        return entry.node if entry is not None and entry.state == PLACED else None

    def streams_on(self, node: str) -> list[str]:
        """Placed streams on *node*, in admission (seq) order."""
        return [
            e.stream_id
            for e in sorted(self._entries.values(), key=lambda e: e.seq)
            if e.state == PLACED and e.node == node
        ]

    def placed_count(self, node: str) -> int:
        return self._placed_per_node.get(node, 0)

    @property
    def total_placed(self) -> int:
        return sum(self._placed_per_node.values())

    def account(self) -> dict[str, int]:
        """State census: {placed, degraded, parked, lost, displaced}."""
        out = {"placed": 0, "degraded": 0, "parked": 0, "lost": 0, "displaced": 0}
        for entry in self._entries.values():
            if entry.state == PLACED:
                out["placed"] += 1
                if entry.tier == "degraded":
                    out["degraded"] += 1
            else:
                out[entry.state] += 1
        return out

    # -- the self-check ------------------------------------------------------
    def check(self) -> None:
        """Recompute per-node counts from entries; raise on any divergence.

        ``ledger total == Σ per-node placements`` after *any* interleaving
        of admit/evict/migrate/park/crash is the invariant the property
        test hammers.
        """
        recomputed: dict[str, int] = {}
        for entry in self._entries.values():
            if entry.state == PLACED:
                if entry.node is None:
                    raise LedgerError(f"placed stream {entry.stream_id!r} has no node")
                recomputed[entry.node] = recomputed.get(entry.node, 0) + 1
            elif entry.node is not None:
                raise LedgerError(
                    f"{entry.state} stream {entry.stream_id!r} still names "
                    f"node {entry.node!r}"
                )
        incremental = {n: c for n, c in self._placed_per_node.items() if c}
        if recomputed != incremental:
            raise LedgerError(
                f"ledger drift: entries say {recomputed}, "
                f"counters say {incremental}"
            )
        if self.total_placed != sum(recomputed.values()):
            raise LedgerError("ledger total != sum of per-node placements")

    def __repr__(self) -> str:
        return (
            f"<ClusterLedger streams={len(self._entries)} "
            f"placed={self.total_placed}>"
        )
