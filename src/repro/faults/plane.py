"""The fault plane: seeded, windowed fault injection for hardware models.

A :class:`FaultPlane` installs itself into the environment's pre-resolved
hook slot (``env.fault_plane``, ``None`` by default); instrumented
components read the attribute directly, so an environment without a plane
pays one attribute load per hook. Faults are *windows*: a
kind, an ``fnmatch`` pattern over component names, a ``[start, end)`` time
range, and a rate or latency term. All stochastic draws come from named
:class:`~repro.sim.RandomStreams` substreams under one seed, and draws
happen only while a matching window is active — so a fault-free run is
bit-identical to a run with no plane installed, and a faulted run is
exactly repeatable given its seed.

Supported fault kinds:

* ``link-loss`` — per-frame discard probability at the switch (bursty loss
  beyond the switch's uniform ``loss_rate``); rate 1.0 is a partition;
* ``disk-latency`` — multiplies/adds to a disk access's positioning+transfer
  time (a dying drive's internal retries, thermal recalibration);
* ``disk-error`` — a read/write fails with
  :class:`~repro.hw.disk.DiskMediaError` after the positioning time;
* ``msg-drop`` / ``msg-dup`` — an I2O message frame vanishes between host
  and NI, or is delivered twice (bridge retry);
* ``udp-drop`` / ``udp-dup`` — a UDP datagram is lost or duplicated inside
  the sending stack (buffer exhaustion, retransmitting bridge), before it
  ever reaches the switch;
* ``rpc-drop`` / ``rpc-dup`` — a cluster control-plane message (admission
  RPC, node heartbeat) is lost on its control channel, or delivered twice
  by a retrying fabric — the windows the at-most-once placement proofs of
  :mod:`repro.cluster` run under.

NI card crash/reset is event-shaped rather than windowed:
:meth:`FaultPlane.schedule_card_crash` drives a card's ``crash()`` and
``reset()`` hooks at fixed times; ``down_us=None`` crashes the card
permanently (no reset is scheduled), the failover experiments' case.
:meth:`FaultPlane.schedule_node_crash` is the cluster-scale analogue: it
takes every i960 card of a server node down at once (the node's power
supply dying, not a single board wedging).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.sim import Environment, RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.nic import I960RDCard

__all__ = ["FaultPlane", "FaultWindow"]


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: *kind* against *target* over ``[start, end)``."""

    kind: str
    target: str  # fnmatch pattern over component names
    start_us: float
    end_us: float
    #: per-event probability (loss/error/drop/dup kinds)
    rate: float = 0.0
    #: multiplier on the base access time (disk-latency kind)
    latency_mult: float = 1.0
    #: flat addition to the access time, µs (disk-latency kind)
    extra_latency_us: float = 0.0

    def matches(self, now_us: float, name: str) -> bool:
        return self.start_us <= now_us < self.end_us and fnmatchcase(name, self.target)


class FaultPlane:
    """Deterministic fault scheduler + injection oracle for one run."""

    def __init__(self, env: Environment, seed: int = 0, tracer=None) -> None:
        if env.fault_plane is not None:
            raise RuntimeError("environment already has a fault plane installed")
        self.env = env
        self.seed = int(seed)
        self.rng = RandomStreams(seed)
        #: optional :class:`~repro.sim.Tracer` receiving 'fault' events
        self.tracer = tracer
        self._windows: list[FaultWindow] = []
        #: injections actually fired, by kind (for reports and tests)
        self.injected: dict[str, int] = {}
        env.fault_plane = self
        env.hooks_changed()

    # -- scheduling ---------------------------------------------------------
    def add_window(self, window: FaultWindow) -> FaultWindow:
        if window.end_us <= window.start_us:
            raise ValueError("fault window must have end > start")
        self._windows.append(window)
        return window

    def inject_link_loss(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """Bursty frame loss at the switch for ports matching *target*."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("loss rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("link-loss", target, start_us, end_us, rate=rate)
        )

    def inject_partition(self, target: str, start_us: float, end_us: float) -> FaultWindow:
        """Total connectivity loss: every frame to *target* is discarded."""
        return self.inject_link_loss(target, start_us, end_us, rate=1.0)

    def inject_disk_latency(
        self,
        target: str,
        start_us: float,
        end_us: float,
        mult: float = 1.0,
        extra_us: float = 0.0,
    ) -> FaultWindow:
        """Latency spike: accesses take ``mult × base + extra_us``."""
        if mult < 1.0 or extra_us < 0.0:
            raise ValueError("latency spike cannot speed the disk up")
        return self.add_window(
            FaultWindow(
                "disk-latency", target, start_us, end_us,
                latency_mult=mult, extra_latency_us=extra_us,
            )
        )

    def inject_disk_errors(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """Media errors: each access fails with probability *rate*."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("error rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("disk-error", target, start_us, end_us, rate=rate)
        )

    def inject_message_drop(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """I2O message frames vanish between host and NI."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("drop rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("msg-drop", target, start_us, end_us, rate=rate)
        )

    def inject_message_duplication(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """I2O message frames are delivered twice (bus/bridge retry)."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("duplication rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("msg-dup", target, start_us, end_us, rate=rate)
        )

    def inject_datagram_drop(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """UDP datagrams vanish inside the sending stack."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("drop rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("udp-drop", target, start_us, end_us, rate=rate)
        )

    def inject_datagram_duplication(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """UDP datagrams are transmitted twice (retransmitting bridge)."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("duplication rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("udp-dup", target, start_us, end_us, rate=rate)
        )

    def inject_rpc_drop(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """Cluster control-plane messages on channels matching *target* are
        lost in flight (rate 1.0 over a channel is a front-door partition)."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("drop rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("rpc-drop", target, start_us, end_us, rate=rate)
        )

    def inject_rpc_duplication(
        self, target: str, start_us: float, end_us: float, rate: float
    ) -> FaultWindow:
        """Control-plane messages are delivered twice (a retrying fabric)."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("duplication rate must be in (0, 1]")
        return self.add_window(
            FaultWindow("rpc-dup", target, start_us, end_us, rate=rate)
        )

    def schedule_card_crash(
        self, card: "I960RDCard", at_us: float, down_us: Optional[float]
    ) -> None:
        """Crash *card* at ``at_us`` and reset it ``down_us`` later.

        ``down_us=None`` is a permanent crash: no reset is ever scheduled,
        so recovery (if any) must come from a failover path, not the card.
        """
        if at_us < self.env.now:
            raise ValueError("cannot schedule a crash in the past")
        if down_us is not None and down_us <= 0:
            raise ValueError("down time must be positive")

        def _crash() -> None:
            self._count("card-crash")
            self._trace("card-crash", card=card.name)
            card.crash()

        def _reset() -> None:
            self._count("card-reset")
            self._trace("card-reset", card=card.name)
            card.reset()

        self.env.schedule_callback(at_us - self.env.now, _crash, name="fault.crash")
        if down_us is not None:
            self.env.schedule_callback(
                at_us + down_us - self.env.now, _reset, name="fault.reset"
            )

    def schedule_node_crash(
        self,
        cards: Union[Sequence["I960RDCard"], Callable[[], Sequence["I960RDCard"]]],
        at_us: float,
        node: Optional[str] = None,
    ) -> None:
        """Crash every card in *cards* at ``at_us`` — a whole node dying.

        *cards* may be a sequence or a zero-argument callable evaluated at
        fire time (so a scenario can name a node before its plane has
        finished wiring cards). The crash is permanent: node-level
        recovery, if any, is a failover/re-admission path. One
        ``node-crash`` injection is counted regardless of card count.
        """
        if at_us < self.env.now:
            raise ValueError("cannot schedule a crash in the past")

        def _crash() -> None:
            resolved = list(cards() if callable(cards) else cards)
            self._count("node-crash")
            self._trace(
                "node-crash",
                node=node or "?",
                cards=",".join(c.name for c in resolved),
            )
            for card in resolved:
                if not card.crashed:
                    card.crash()

        self.env.schedule_callback(
            at_us - self.env.now, _crash, name="fault.node-crash"
        )

    # -- injection oracle (called from hardware hooks) ----------------------
    def frame_lost(self, port_name: str) -> bool:
        """Should the switch discard this frame bound for *port_name*?"""
        window = self._active("link-loss", port_name)
        if window is None:
            return False
        if window.rate < 1.0 and not self._draw("link", window.rate):
            return False
        self._count("link-loss")
        self._trace("link-loss", port=port_name)
        return True

    def disk_delay_us(self, disk_name: str, base_us: float) -> float:
        """Extra access latency (µs) on top of *base_us* for this request."""
        window = self._active("disk-latency", disk_name)
        if window is None:
            return 0.0
        self._count("disk-latency")
        return base_us * (window.latency_mult - 1.0) + window.extra_latency_us

    def disk_error(self, disk_name: str) -> bool:
        """Should this disk access fail with a media error?"""
        window = self._active("disk-error", disk_name)
        if window is None or not self._draw("disk", window.rate):
            return False
        self._count("disk-error")
        self._trace("disk-error", disk=disk_name)
        return True

    def message_dropped(self, queue_name: str) -> bool:
        window = self._active("msg-drop", queue_name)
        if window is None or not self._draw("msg", window.rate):
            return False
        self._count("msg-drop")
        self._trace("msg-drop", queue=queue_name)
        return True

    def message_duplicated(self, queue_name: str) -> bool:
        window = self._active("msg-dup", queue_name)
        if window is None or not self._draw("msg", window.rate):
            return False
        self._count("msg-dup")
        self._trace("msg-dup", queue=queue_name)
        return True

    def datagram_dropped(self, stack_name: str) -> bool:
        window = self._active("udp-drop", stack_name)
        if window is None or not self._draw("udp", window.rate):
            return False
        self._count("udp-drop")
        self._trace("udp-drop", stack=stack_name)
        return True

    def datagram_duplicated(self, stack_name: str) -> bool:
        window = self._active("udp-dup", stack_name)
        if window is None or not self._draw("udp", window.rate):
            return False
        self._count("udp-dup")
        self._trace("udp-dup", stack=stack_name)
        return True

    def rpc_dropped(self, channel_name: str) -> bool:
        window = self._active("rpc-drop", channel_name)
        if window is None or not self._draw("rpc", window.rate):
            return False
        self._count("rpc-drop")
        self._trace("rpc-drop", channel=channel_name)
        return True

    def rpc_duplicated(self, channel_name: str) -> bool:
        window = self._active("rpc-dup", channel_name)
        if window is None or not self._draw("rpc", window.rate):
            return False
        self._count("rpc-dup")
        self._trace("rpc-dup", channel=channel_name)
        return True

    # -- internals ----------------------------------------------------------
    def _active(self, kind: str, name: str) -> Optional[FaultWindow]:
        now = self.env.now
        for window in self._windows:
            if window.kind == kind and window.matches(now, name):
                return window
        return None

    def _draw(self, stream: str, rate: float) -> bool:
        if rate >= 1.0:
            return True
        return float(self.rng.stream(f"faults.{stream}").random()) < rate

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        obs = self.env.obs
        if obs is not None:
            obs.count("faults.injected", kind=kind)

    def _trace(self, name: str, **fields) -> None:
        tracer = self.tracer
        if tracer is None:
            # no explicit tracer wired: ride the observability plane's
            obs = self.env.obs
            tracer = obs.tracer if obs is not None else None
        if tracer is not None and tracer.wants("fault"):
            tracer.emit("fault", name, **fields)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def __repr__(self) -> str:
        return (
            f"<FaultPlane seed={self.seed} windows={len(self._windows)} "
            f"injected={self.total_injected}>"
        )
