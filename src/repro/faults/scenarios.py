"""Named chaos scenarios.

Each scenario is a recipe for one fault campaign against a running
streaming configuration: *what* breaks (scheduled on a
:class:`~repro.faults.FaultPlane`), and *when*, expressed as fractions of
the run so the same scenario scales from a short regression test to the
full Figure-9-length experiment.

The registry keys are the names accepted by ``python -m repro.experiments
chaos`` (see :mod:`repro.experiments.chaos`). ``baseline`` installs a
plane with *no* windows — by construction the hooks draw no randomness
and add no latency, so the run must be bit-identical to a plane-less
Figure 9 run; it is the control that keeps the fault plane honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple

from .plane import FaultPlane

__all__ = [
    "ChaosScenario",
    "SCENARIOS",
    "FAILOVER_SCENARIOS",
    "resolve_scenario",
]

#: (plane, service, fault_start_us, fault_end_us) -> None
Installer = Callable[[FaultPlane, Any, float, float], None]


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault campaign."""

    name: str
    description: str
    #: fault onset / clearance as fractions of the run duration
    start_frac: float
    end_frac: float
    installer: Installer

    def fault_window_us(self, duration_us: float) -> Tuple[float, float]:
        return (self.start_frac * duration_us, self.end_frac * duration_us)

    def install(self, plane: FaultPlane, service: Any, duration_us: float) -> None:
        """Schedule this scenario's faults for a run of *duration_us*."""
        start_us, end_us = self.fault_window_us(duration_us)
        self.installer(plane, service, start_us, end_us)


def resolve_scenario(
    name: str, registry: dict[str, ChaosScenario], kind: str = "chaos"
) -> ChaosScenario:
    """Look up *name* in *registry*, failing with the valid set spelled out.

    Every scenario-driven runner funnels its CLI names through here so a
    typo'd ``--scenarios card-crsh`` reports the *kind* of scenario and
    the names that would have worked, instead of a bare ``KeyError``.
    """
    scenario = registry.get(name)
    if scenario is None:
        valid = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown {kind} scenario {name!r}; valid scenarios: {valid}"
        )
    return scenario


def _install_nothing(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """The control: a plane with no fault windows."""


def _install_link_burst(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """30% frame loss toward every client for the fault window."""
    plane.inject_link_loss("client_*", start_us, end_us, rate=0.30)


def _install_partition(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """Total partition of client_s1 (s2 untouched) for the fault window."""
    plane.inject_partition("client_s1", start_us, end_us)


def _install_disk_spike(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """Producer-card disks slow 30x and throw occasional media errors."""
    plane.inject_disk_latency("*.i2o*.disk*", start_us, end_us, mult=30.0)
    plane.inject_disk_errors("*.i2o*.disk*", start_us, end_us, rate=0.02)


def _install_ni_crash(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """The scheduler NI crashes at fault onset and resets at clearance."""
    plane.schedule_card_crash(
        service.card, at_us=start_us, down_us=end_us - start_us
    )


SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="baseline",
            description="no faults (control: must match Figure 9 exactly)",
            start_frac=0.5,
            end_frac=0.5,
            installer=_install_nothing,
        ),
        ChaosScenario(
            name="link-burst",
            description="30% frame loss to all clients mid-run",
            start_frac=0.4,
            end_frac=0.6,
            installer=_install_link_burst,
        ),
        ChaosScenario(
            name="partition",
            description="client_s1 fully partitioned mid-run",
            start_frac=0.4,
            end_frac=0.55,
            installer=_install_partition,
        ),
        ChaosScenario(
            name="disk-spike",
            description="producer disks 30x slower with 2% media errors",
            start_frac=0.4,
            end_frac=0.6,
            installer=_install_disk_spike,
        ),
        ChaosScenario(
            name="ni-crash",
            description="scheduler NI crashes, resets after the window",
            start_frac=0.4,
            end_frac=0.48,
            installer=_install_ni_crash,
        ),
    )
}


# -- failover campaigns (HAStreamingService targets) -------------------------
#
# These run against the multi-card HA service of
# :mod:`repro.server.failover`; the *service* argument is an
# HAStreamingService, and the faults aim at its first scheduler card (card
# 0) so the watchdog/migration plane has something to detect and survive.


def _install_card_crash(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """Card 0 crashes permanently: detection must come from missed beats,
    recovery from migration — the board never resets."""
    plane.schedule_card_crash(service.runtimes[0].card, at_us=start_us, down_us=None)


def _install_heartbeat_partition(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """Card 0's I2O message path goes black for the window while the card
    keeps scheduling: the watchdog must classify *partitioned* (the PCI
    status probe still answers) and must NOT migrate."""
    plane.inject_message_drop(service.planes[0].mq.name, start_us, end_us, rate=1.0)
    # a partition has no card-crash hook to stamp the fault instant
    plane.env.schedule_callback(
        start_us - plane.env.now,
        lambda: service.meter.mark_fault(service.total_violations),
        name="fault.mark:partition",
    )


def _install_card_flap(
    plane: FaultPlane, service: Any, start_us: float, end_us: float
) -> None:
    """Card 0 crashes and resets within the detection budget: the existing
    shed/re-admit hooks ride it out and the watchdog must not declare the
    flapping card dead (no migration)."""
    plane.schedule_card_crash(
        service.runtimes[0].card,
        at_us=start_us,
        down_us=0.5 * service.detection_budget_us,
    )


FAILOVER_SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="baseline",
            description="no faults (control: the HA plane must cost nothing)",
            start_frac=0.5,
            end_frac=0.5,
            installer=_install_nothing,
        ),
        ChaosScenario(
            name="card-crash",
            description="scheduler card 0 crashes permanently; streams migrate",
            start_frac=0.4,
            end_frac=1.0,
            installer=_install_card_crash,
        ),
        ChaosScenario(
            name="hb-partition",
            description="card 0 heartbeats blackholed mid-run; card stays up",
            start_frac=0.4,
            end_frac=0.6,
            installer=_install_heartbeat_partition,
        ),
        ChaosScenario(
            name="card-flap",
            description="card 0 crashes and resets inside the detection budget",
            start_frac=0.4,
            end_frac=0.4,
            installer=_install_card_flap,
        ),
    )
}
