"""Fault injection and robustness measurement.

The paper's headline claim is *immunity* — the NI-resident scheduler keeps
streaming while the host is crushed. This package makes robustness a
measured property rather than an assumption: a deterministic, seeded
:class:`FaultPlane` injects platform misbehaviour (link loss bursts and
partitions, disk latency spikes and media errors, NI card crash/reset, I2O
message drop/duplication) through small hooks the hardware models consult,
and :mod:`repro.faults.scenarios` names the replayable chaos scenarios the
experiment harness measures recovery from.
"""

from .plane import FaultPlane, FaultWindow
from .scenarios import (
    ChaosScenario,
    FAILOVER_SCENARIOS,
    SCENARIOS,
    resolve_scenario,
)

__all__ = [
    "FaultPlane",
    "FaultWindow",
    "ChaosScenario",
    "SCENARIOS",
    "FAILOVER_SCENARIOS",
    "resolve_scenario",
]
