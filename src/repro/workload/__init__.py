"""Server workloads: the Apache process-pool model and the httperf-like
open-loop load generator used to produce Figure 6's utilization profiles."""

from .apache import ApacheServer, WebRequest
from .httperf import Httperf

__all__ = ["ApacheServer", "WebRequest", "Httperf"]
