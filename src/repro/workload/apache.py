"""Apache-like web server model.

The paper loads its host with "the Apache web server version 1.3.12 (with a
maximum of 10 server processes and starting process pool with five server
processes)". Model: a pre-fork process pool on the host OS; each worker
pulls a request from the accept queue, burns CPU for parse+respond, and
(optionally) blocks briefly for disk/network. The pool grows on backlog up
to ``max_procs`` and never shrinks below ``start_procs`` — the observable
behaviour Figure 6's load profile depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.rtos.solaris import SolarisHostOS
from repro.rtos.task import Task
from repro.sim import Environment, RandomStreams, Store, TallyStats

__all__ = ["WebRequest", "ApacheServer"]


@dataclass
class WebRequest:
    """One HTTP call."""

    submitted_at: float
    #: CPU work to serve it, µs
    service_us: float
    #: reply-delivery event the client waits on
    done: object = None


class ApacheServer:
    """Pre-fork worker pool running as host OS tasks."""

    def __init__(
        self,
        env: Environment,
        host_os: SolarisHostOS,
        start_procs: int = 5,
        max_procs: int = 10,
        mean_service_us: float = 2_000.0,
        io_wait_us: float = 500.0,
        heavy_tail_prob: float = 0.04,
        heavy_tail_mult: float = 25.0,
        rng: Optional[RandomStreams] = None,
        priority: int = 110,
    ) -> None:
        if not 1 <= start_procs <= max_procs:
            raise ValueError("need 1 <= start_procs <= max_procs")
        if not 0.0 <= heavy_tail_prob < 1.0:
            raise ValueError("heavy_tail_prob must be in [0, 1)")
        self.env = env
        self.host_os = host_os
        self.max_procs = max_procs
        self.mean_service_us = mean_service_us
        self.io_wait_us = io_wait_us
        #: real web loads are heavy-tailed: most calls are small static
        #: pages, a few are CGI/large responses holding a CPU for many
        #: quanta. The tail is what produces the >80 % bursts inside a
        #: 60 %-average profile (Figure 6) and the multi-quantum stalls
        #: that starve a host-resident packet scheduler.
        self.heavy_tail_prob = heavy_tail_prob
        self.heavy_tail_mult = heavy_tail_mult
        self.priority = priority
        self._rng = (rng if rng is not None else RandomStreams(seed=0)).stream("apache")
        self._io_wait_buf: list[float] = []
        self.accept_queue: Store = Store(env, name="apache.accept")
        self.workers: list[Task] = []
        self.requests_served = 0
        self.response_time_us = TallyStats("apache.response")
        for _ in range(start_procs):
            self._fork()
        # the master process watches backlog and forks up to max_procs
        env.process(self._master(), name="apache.master")

    @property
    def nprocs(self) -> int:
        return len(self.workers)

    @property
    def effective_mean_service_us(self) -> float:
        """Mean CPU per call including the heavy tail (for load sizing)."""
        p, m = self.heavy_tail_prob, self.heavy_tail_mult
        return self.mean_service_us * (1.0 - p + p * m)

    def draw_service_us(self, gen) -> float:
        """Sample one call's CPU demand."""
        if self.heavy_tail_prob > 0 and gen.random() < self.heavy_tail_prob:
            return float(gen.exponential(self.mean_service_us * self.heavy_tail_mult))
        return float(gen.exponential(self.mean_service_us))

    def submit(self, request: WebRequest) -> None:
        """Hand a parsed request to the pool (called by httperf's network)."""
        if request.done is None:
            request.done = self.env.event()
        self.accept_queue.put_nowait(request)

    # -- processes -----------------------------------------------------------
    def _fork(self) -> None:
        idx = len(self.workers)
        self.workers.append(
            self.host_os.spawn(f"httpd{idx}", self._worker, priority=self.priority)
        )

    def _master(self) -> Generator:
        while True:
            yield self.env.timeout(500_000.0)  # Apache's 1-per-second-ish ramp
            if len(self.accept_queue.items) > 2 and self.nprocs < self.max_procs:
                self._fork()

    def _draw_io_wait_us(self) -> float:
        """Next logging/disk-write stall, drawn from the shared pool stream.

        Draws are buffered in batches: numpy's ``Generator.exponential``
        produces the identical value sequence batched or one at a time, and
        batching amortizes the per-call dispatch overhead across the pool's
        busiest path.
        """
        buf = self._io_wait_buf
        if not buf:
            # tolist() yields plain python floats (np.float64 must not leak
            # into the simulation clock); reversed so pop() consumes in
            # draw order.
            buf.extend(reversed(self._rng.exponential(self.io_wait_us, size=256).tolist()))
        return buf.pop()

    def _worker(self, task: Task) -> Generator:
        env = self.env
        timeout = env.timeout
        get = self.accept_queue.get
        response_add = self.response_time_us.add
        while True:
            request: WebRequest = yield get()
            yield task.compute(request.service_us)
            if self.io_wait_us > 0:
                # logging/disk write: blocks, does not burn CPU
                yield timeout(self._draw_io_wait_us())
            self.requests_served += 1
            response_add(env.now - request.submitted_at)
            done = request.done
            if done is not None and done._state == 0:  # still PENDING
                done.succeed()
