"""httperf-like web load generator.

"The web server is loaded using `httperf` (version 0.6) from remote
Linux-based clients. Flexible specification of load from remote clients is
allowed — web pages may be requested at a certain rate by a number of
connections with a user-specified ceiling on the total number of calls."

:class:`Httperf` reproduces that parameterization: ``connections``
concurrent open-loop connections, each issuing calls at ``rate_per_s``
(exponential interarrivals), stopping after ``total_calls``. The
convenience constructor :meth:`for_target_utilization` picks a rate that
drives the host CPUs to a requested average utilization — the 45 % and
60 % levels of Figure 6.
"""

from __future__ import annotations

from functools import partial
from typing import Generator, Optional

from repro.sim import Environment, RandomStreams, TallyStats

from .apache import ApacheServer, WebRequest

__all__ = ["Httperf"]


class Httperf:
    """Open-loop request generator against an :class:`ApacheServer`."""

    def __init__(
        self,
        env: Environment,
        server: ApacheServer,
        rate_per_s: float,
        connections: int = 4,
        total_calls: int = 10_000,
        start_at_us: float = 0.0,
        stop_at_us: Optional[float] = None,
        rate_profile: Optional[list[tuple[float, float]]] = None,
        rng: Optional[RandomStreams] = None,
    ) -> None:
        if rate_per_s <= 0 or connections < 1:
            raise ValueError("rate and connections must be positive")
        if rate_profile is not None:
            if not rate_profile or any(r < 0 for _t, r in rate_profile):
                raise ValueError("rate profile must be non-empty with rates >= 0")
            if sorted(t for t, _r in rate_profile) != [t for t, _r in rate_profile]:
                raise ValueError("rate profile times must be sorted")
        self.env = env
        self.server = server
        self.rate_per_s = rate_per_s
        #: optional piecewise-constant schedule [(start_us, rate_per_s), ...]
        #: scaling knob: entries are *fractions of rate_per_s* when <= 1.0?
        #: no — entries are absolute rates; rate_per_s is the fallback
        #: before the first entry. Used to reproduce Figure 6's ramping
        #: utilization profiles (load applied mid-run, bursting past the
        #: average level, then released).
        self.rate_profile = rate_profile
        self.connections = connections
        self.total_calls = total_calls
        self.start_at_us = start_at_us
        self.stop_at_us = stop_at_us
        self.calls_issued = 0
        self.calls_completed = 0
        self.response_time_us = TallyStats("httperf.response")
        streams = rng if rng is not None else RandomStreams(seed=0)
        self._gens = [streams.stream(f"httperf{i}") for i in range(connections)]
        for i in range(connections):
            env.process(self._connection(i), name=f"httperf.conn{i}")

    @classmethod
    def for_target_utilization(
        cls,
        env: Environment,
        server: ApacheServer,
        target_utilization: float,
        n_cpus: int,
        **kwargs,
    ) -> "Httperf":
        """Pick the aggregate rate that loads *n_cpus* to the target level.

        Open-loop M/M/k sizing: rate = target · k / E[service].
        """
        if not 0.0 < target_utilization < 1.0:
            raise ValueError("target utilization must be in (0, 1)")
        total_rate = (
            target_utilization * n_cpus * 1_000_000.0 / server.effective_mean_service_us
        )
        return cls(env, server, rate_per_s=total_rate, **kwargs)

    def current_rate(self, now_us: float) -> float:
        """Aggregate request rate in effect at *now_us*."""
        if self.rate_profile is None:
            return self.rate_per_s
        rate = self.rate_per_s
        for start, r in self.rate_profile:
            if now_us >= start:
                rate = r
            else:
                break
        return rate

    def _connection(self, idx: int) -> Generator:
        env = self.env
        gen = self._gens[idx]
        timeout = env.timeout
        exponential = gen.exponential
        if self.start_at_us > 0:
            yield timeout(self.start_at_us)
        # Piecewise-constant profile, applied with a monotone pointer: the
        # connection's clock only moves forward, so each entry is crossed
        # once instead of rescanning the schedule per call (current_rate()
        # stays as the random-access equivalent for external callers).
        profile = self.rate_profile
        next_entry = 0
        rate = self.rate_per_s
        stop_at = self.stop_at_us
        gap_scale = 1_000_000.0 * self.connections
        while self.calls_issued < self.total_calls:
            if stop_at is not None and env.now >= stop_at:
                return
            if profile is not None:
                now = env.now
                while next_entry < len(profile) and now >= profile[next_entry][0]:
                    rate = profile[next_entry][1]
                    next_entry += 1
            if rate <= 0:
                # load released: idle until the profile may change
                yield timeout(500_000.0)
                continue
            yield timeout(float(exponential(gap_scale / rate)))
            if self.stop_at_us is not None and env.now >= self.stop_at_us:
                return
            if self.calls_issued >= self.total_calls:
                return  # another connection used the last call while we slept
            self.calls_issued += 1
            request = WebRequest(
                submitted_at=env.now,
                service_us=self.server.draw_service_us(gen),
                done=env.event(),
            )
            self.server.submit(request)
            # Completion accounting rides the done event's own callback slot
            # rather than a per-request collector process: same processing
            # instant, two fewer kernel events per call.
            request.done.callbacks.append(partial(self._collect, request))

    def _collect(self, request: WebRequest, _done_event) -> None:
        self.calls_completed += 1
        self.response_time_us.add(self.env.now - request.submitted_at)
