"""Operating-system models: VxWorks 'wind' on the NI, time-sharing Solaris
on the host. Tasks request CPU through ``task.compute(us)``; contention,
quanta, priorities, and context-switch costs produce the service-rate
variability the paper measures."""

from .kernel import OSKernel
from .solaris import SolarisHostOS
from .task import Task, WorkRequest
from .vxworks import WindScheduler

__all__ = ["OSKernel", "Task", "WorkRequest", "WindScheduler", "SolarisHostOS"]
