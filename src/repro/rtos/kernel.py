"""OS kernel base: ready queue, per-CPU dispatchers, context-switch costs.

Subclasses fix the policy:

* :class:`~repro.rtos.vxworks.WindScheduler` — strict priority, preemptive,
  run-to-completion (the VxWorks 'wind' scheduler on the NI);
* :class:`~repro.rtos.solaris.SolarisHostOS` — time-sharing round-robin with
  a quantum, multiprocessor, with system daemons (the host).

The kernel serves :class:`~repro.rtos.task.WorkRequest`s: each dispatcher
(one per CPU) repeatedly selects a request, charges context-switch overhead
when it switches tasks, runs a slice, and either completes the request or
requeues it. All de-facto scheduling behaviour the paper measures — queueing
behind web-server processes, variable service rate, jitter — emerges here.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Optional

from repro.sim import Environment, Event, Interrupt
from repro.hw.cpu import CPUSpec

from .task import Task, WorkRequest

__all__ = ["OSKernel"]

#: slices smaller than this are treated as complete (float guard)
_EPSILON_US = 1e-6


class OSKernel:
    """Base scheduler: heap-ordered ready queue + one dispatcher per CPU."""

    #: policy: does a new arrival preempt a running lower-priority task?
    preemptive = False
    #: policy: maximum slice before the task is rotated to the queue's back
    quantum_us: float = float("inf")
    #: policy: does a requeued (expired-quantum) request go behind newer
    #: arrivals (True: time sharing) or stay ahead of its class (False)?
    requeue_to_back = False

    def __init__(
        self,
        env: Environment,
        n_cpus: int = 1,
        cpu_spec: Optional[CPUSpec] = None,
        name: str = "os",
    ) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.env = env
        self.name = name
        self.n_cpus = n_cpus
        self.cpu_spec = cpu_spec
        self._ready: list[tuple[int, int, WorkRequest]] = []
        self._seq = 0
        self._idle_waiters: list[Event] = []
        self._running: list[Optional[WorkRequest]] = [None] * n_cpus
        self._last_task: list[Optional[Task]] = [None] * n_cpus
        #: cumulative busy time (work + switch overhead) per CPU, µs
        self.busy_us = [0.0] * n_cpus
        self._slice_started = [0.0] * n_cpus
        self.context_switches = 0
        self.tasks: list[Task] = []
        self._dispatchers = [
            env.process(self._dispatcher(i), name=f"{name}.cpu{i}") for i in range(n_cpus)
        ]

    # -- public API ----------------------------------------------------------
    def spawn(
        self,
        name: str,
        body: Callable[[Task], Generator],
        priority: int = 100,
        bound_cpu: Optional[int] = None,
    ) -> Task:
        """Create a task and start its body as a simulation process."""
        if bound_cpu is not None and not 0 <= bound_cpu < self.n_cpus:
            raise ValueError(f"bound_cpu {bound_cpu} out of range")
        task = Task(self, name, priority=priority, bound_cpu=bound_cpu)
        task.process = self.env.process(body(task), name=f"{self.name}.{name}")
        self.tasks.append(task)
        return task

    def cumulative_busy_us(self) -> float:
        """Total busy µs across CPUs, including currently-running slices."""
        total = sum(self.busy_us)
        for i, req in enumerate(self._running):
            if req is not None:
                # a mid-switch CPU has its slice start in the future (the
                # switch overhead was charged up-front); clamp at zero
                total += max(0.0, self.env.now - self._slice_started[i])
        return total

    @property
    def ready_queue_length(self) -> int:
        return len(self._ready)

    # -- submission -------------------------------------------------------------
    def _submit(self, task: Task, amount_us: float) -> Event:
        ev = self.env.event(name=task._compute_label)
        seq = self._seq = self._seq + 1
        req = WorkRequest(task, amount_us, ev, seq)
        # req.priority inlined (it is a property; _submit runs per compute())
        heapq.heappush(self._ready, (task.priority + task.decay_offset, seq, req))
        self._wake_idle()
        if self.preemptive:
            self._maybe_preempt(req)
        return ev

    def _requeue(self, req: WorkRequest) -> None:
        if self.requeue_to_back:
            self._seq += 1
            req.seq = self._seq
        task = req.task
        heapq.heappush(self._ready, (task.priority + task.decay_offset, req.seq, req))
        self._wake_idle()

    def _wake_idle(self) -> None:
        if self._idle_waiters:
            waiters, self._idle_waiters = self._idle_waiters, []
            for w in waiters:
                w.succeed()

    # -- preemption ----------------------------------------------------------------
    def _maybe_preempt(self, newcomer: WorkRequest) -> None:
        """Interrupt the worst-ranked running slice if *newcomer* outranks it."""
        worst_idx: Optional[int] = None
        worst_prio = newcomer.priority
        for i, running in enumerate(self._running):
            if running is None:
                return  # an idle CPU will pick the newcomer up immediately
            if newcomer.bound_cpu is not None and i != newcomer.bound_cpu:
                continue
            if running.priority > worst_prio:
                worst_prio = running.priority
                worst_idx = i
        if worst_idx is not None:
            self._dispatchers[worst_idx].interrupt("preempt")

    # -- selection -------------------------------------------------------------------
    def _select(self, cpu_idx: int) -> Optional[WorkRequest]:
        """Pop the best eligible request for *cpu_idx* (affinity-aware)."""
        skipped: list[tuple[int, int, WorkRequest]] = []
        chosen: Optional[WorkRequest] = None
        while self._ready:
            entry = heapq.heappop(self._ready)
            req = entry[2]
            if req.bound_cpu is None or req.bound_cpu == cpu_idx:
                chosen = req
                break
            skipped.append(entry)
        for entry in skipped:
            heapq.heappush(self._ready, entry)
        return chosen

    # -- the dispatcher loop -----------------------------------------------------------
    def _dispatcher(self, cpu_idx: int) -> Generator:
        # Loop invariants bound once per dispatcher: the spec is a frozen
        # dataclass and quantum_us is a class policy constant, so the switch
        # overhead and quantum never change for the life of the kernel.
        env = self.env
        timeout = env.timeout
        select = self._select
        running = self._running
        last_task = self._last_task
        busy_us = self.busy_us
        slice_started = self._slice_started
        quantum = self.quantum_us
        switch_us = 0.0
        if self.cpu_spec is not None:
            switch_us = self.cpu_spec.context_switch_us + self.cpu_spec.cache_pollution_us
        idle_label = f"{self.name}.cpu{cpu_idx}.idle"  # built once, reused per idle spin
        while True:
            req = select(cpu_idx)
            if req is None:
                waiter = env.event(name=idle_label)
                # NOT bound locally: _wake_idle swaps the list wholesale
                self._idle_waiters.append(waiter)
                try:
                    yield waiter
                except Interrupt:
                    pass  # stale preempt aimed at a now-idle CPU
                continue

            # Context-switch cost when the CPU changes tasks. The CPU is
            # occupied (and preemptible) for the duration of the switch.
            if switch_us > 0.0 and last_task[cpu_idx] is not req.task:
                self.context_switches += 1
                busy_us[cpu_idx] += switch_us
                running[cpu_idx] = req
                slice_started[cpu_idx] = env.now + switch_us
                try:
                    yield timeout(switch_us)
                except Interrupt:
                    # preempted mid-switch: put the victim back and
                    # re-select so the preemptor actually runs
                    running[cpu_idx] = None
                    self._requeue(req)
                    last_task[cpu_idx] = None
                    continue
                finally:
                    running[cpu_idx] = None
            last_task[cpu_idx] = req.task

            remaining = req.remaining_us
            slice_us = quantum if quantum < remaining else remaining
            running[cpu_idx] = req
            slice_started[cpu_idx] = env.now
            preempted = False
            try:
                yield timeout(slice_us)
            except Interrupt:
                preempted = True
            elapsed = env.now - slice_started[cpu_idx]
            running[cpu_idx] = None
            req.remaining_us -= elapsed
            req.task.cpu_time_us += elapsed
            busy_us[cpu_idx] += elapsed

            if req.remaining_us <= _EPSILON_US:
                req.event.succeed()
            else:
                self._requeue(req)
            if preempted:
                # force a re-selection so the preemptor runs next
                self._last_task[cpu_idx] = None

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} cpus={self.n_cpus} "
            f"ready={len(self._ready)}>"
        )
