"""The VxWorks 'wind' scheduler running on the NI.

A stand-alone embedded VxWorks configuration: strict priority, preemptive,
run-to-completion within a priority level, and only a handful of light
system tasks. This is the substrate of the paper's NI-resident scheduler —
and the structural reason for its load immunity: nothing else competes for
the NI CPU, so the DWCS task "receives NI-CPU at a rate with lower
variability".

Priorities follow the VxWorks convention: 0 is most urgent, 255 least.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.cpu import CPUSpec, I960RD_66
from repro.sim import Environment

from .kernel import OSKernel
from .task import Task

__all__ = ["WindScheduler"]

#: priority given to the resident system tasks (tNetTask-class work)
SYSTEM_TASK_PRIORITY = 50
#: default priority for spawned application tasks
DEFAULT_TASK_PRIORITY = 100


class WindScheduler(OSKernel):
    """Priority-preemptive single-CPU RTOS kernel (VxWorks 'wind')."""

    preemptive = True
    quantum_us = float("inf")  # run to completion within a priority
    requeue_to_back = False

    def __init__(
        self,
        env: Environment,
        cpu_spec: CPUSpec = I960RD_66,
        name: str = "vxworks",
    ) -> None:
        super().__init__(env, n_cpus=1, cpu_spec=cpu_spec, name=name)

    def spawn_system_tasks(
        self,
        period_us: float = 50_000.0,
        burst_us: float = 100.0,
        count: int = 2,
    ) -> list[Task]:
        """Start the few periodic housekeeping tasks of an embedded image.

        Defaults give the near-zero background load of a stand-alone
        VxWorks configuration (≈0.2 % per task).
        """
        tasks = []
        for i in range(count):
            tasks.append(
                self.spawn(
                    f"tSys{i}",
                    lambda task: self._periodic(task, period_us, burst_us),
                    priority=SYSTEM_TASK_PRIORITY,
                )
            )
        return tasks

    def _periodic(self, task: Task, period_us: float, burst_us: float) -> Generator:
        while True:
            yield task.compute(burst_us)
            yield self.env.timeout(period_us)
