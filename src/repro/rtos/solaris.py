"""Solaris-like time-sharing host OS.

The host side of the paper's comparison: a multiprocessor time-sharing
kernel (quantum-based round robin) where the DWCS scheduler process competes
with the Apache process pool, httperf-driven work, and system daemons. Every
context switch charges the Pentium Pro's switch + cache-pollution cost —
"context switches ... are expensive due to the CPU's deep cache hierarchy
and due to cache pollution".

``pbind`` (binding the scheduler to a processor, as the paper does with the
Solaris ``pbind`` facility) is exposed through the ``bound_cpu`` spawn
argument.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.cpu import CPUSpec, PENTIUM_PRO_200
from repro.sim import Environment, RandomStreams

from .kernel import OSKernel
from .task import Task

__all__ = ["SolarisHostOS"]


class SolarisHostOS(OSKernel):
    """Time-sharing multiprocessor kernel with system daemons."""

    preemptive = False
    #: TS-class time slice. Solaris 2.x dispatches time-sharing processes
    #: with quanta between 20 ms (best priority) and 200 ms (worst); a
    #: CPU-bound web request therefore holds a processor for a long slice,
    #: which is precisely the stall mechanism that starves a host-resident
    #: packet scheduler (Figures 7/8). 100 ms models the mid-table slice.
    quantum_us = 100_000.0
    requeue_to_back = True

    def __init__(
        self,
        env: Environment,
        n_cpus: int = 2,
        cpu_spec: CPUSpec = PENTIUM_PRO_200,
        name: str = "solaris",
    ) -> None:
        super().__init__(env, n_cpus=n_cpus, cpu_spec=cpu_spec, name=name)

    def pbind(self, task: Task, cpu_idx: int) -> None:
        """Bind *task* to a processor (Solaris ``pbind``)."""
        if not 0 <= cpu_idx < self.n_cpus:
            raise ValueError(f"cpu {cpu_idx} out of range")
        task.bound_cpu = cpu_idx

    def spawn_daemons(
        self,
        rng: Optional[RandomStreams] = None,
        count: int = 4,
        mean_period_us: float = 200_000.0,
        mean_burst_us: float = 1_500.0,
    ) -> list[Task]:
        """Start background system daemons.

        "even a minimal installation runs system daemons" — these provide
        the small baseline load visible in Figure 6's no-web-load trace.
        """
        streams = rng if rng is not None else RandomStreams(seed=0)
        tasks = []
        for i in range(count):
            gen = streams.stream(f"daemon{i}")
            tasks.append(
                self.spawn(
                    f"daemon{i}",
                    lambda task, gen=gen: self._daemon(task, gen, mean_period_us, mean_burst_us),
                    priority=120,
                )
            )
        return tasks

    def _daemon(self, task: Task, gen, mean_period_us: float, mean_burst_us: float) -> Generator:
        while True:
            yield self.env.timeout(float(gen.exponential(mean_period_us)))
            yield task.compute(float(gen.exponential(mean_burst_us)))

    # -- time-sharing priority decay ------------------------------------------
    def enable_ts_decay(
        self,
        window_us: float = 1_000_000.0,
        max_penalty: int = 30,
    ) -> None:
        """Start the ts_update-style priority recalculation.

        Once per *window*, every task's recent CPU share sets a dynamic
        penalty on its priority (0 for sleepers, up to *max_penalty* for a
        task that consumed a full CPU): CPU hogs sink toward the bottom of
        the dispatch order, interactive tasks float back up. This is the
        dynamic mechanism whose steady state the streaming experiments
        model with static priorities.
        """
        if window_us <= 0 or max_penalty < 1:
            raise ValueError("window and penalty must be positive")
        self.env.process(
            self._ts_update(window_us, max_penalty), name=f"{self.name}.ts_update"
        )

    def _ts_update(self, window_us: float, max_penalty: int) -> Generator:
        last_cpu: dict[int, float] = {}
        while True:
            yield self.env.timeout(window_us)
            for task in self.tasks:
                used = task.cpu_time_us - last_cpu.get(id(task), 0.0)
                last_cpu[id(task)] = task.cpu_time_us
                share = min(1.0, used / window_us)
                task.decay_offset = int(round(share * max_penalty))
