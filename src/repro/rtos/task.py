"""Tasks and CPU-time requests.

The OS models share one execution abstraction: a :class:`Task` is a
simulation process that, whenever it needs processor time, yields
``task.compute(us)``. The owning kernel serves these requests through its
scheduling policy — so the *rate at which a task receives CPU* (the quantity
the paper's Figures 6–8 are about) emerges from contention, quanta, and
priorities rather than being assumed.

A task that sleeps (``yield env.timeout(...)``) or blocks on I/O consumes no
CPU, exactly like a blocked thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import OSKernel

__all__ = ["Task", "WorkRequest"]


class WorkRequest:
    """An outstanding demand for CPU time by a task."""

    __slots__ = ("task", "remaining_us", "event", "seq", "enqueued_at")

    def __init__(self, task: "Task", amount_us: float, event: Event, seq: int) -> None:
        self.task = task
        self.remaining_us = amount_us
        self.event = event
        self.seq = seq
        self.enqueued_at = task.kernel.env.now

    @property
    def priority(self) -> int:
        return self.task.priority + self.task.decay_offset

    @property
    def bound_cpu(self) -> Optional[int]:
        return self.task.bound_cpu

    def __repr__(self) -> str:
        return f"<WorkRequest {self.task.name!r} {self.remaining_us:.1f}us left>"


class Task:
    """A schedulable thread of control under an OS kernel.

    Parameters
    ----------
    kernel:
        The owning OS model.
    name:
        Debug/reporting label.
    priority:
        Lower value = more important (VxWorks convention, 0..255).
    bound_cpu:
        Optional CPU index this task is pinned to (Solaris ``pbind``).
    """

    def __init__(
        self,
        kernel: "OSKernel",
        name: str,
        priority: int = 100,
        bound_cpu: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.priority = priority
        self.bound_cpu = bound_cpu
        #: dynamic penalty added by time-sharing priority decay (0 = fresh);
        #: see :meth:`repro.rtos.solaris.SolarisHostOS.enable_ts_decay`
        self.decay_offset = 0
        #: cumulative CPU time actually received, µs
        self.cpu_time_us = 0.0
        #: number of compute() requests issued
        self.requests = 0
        self.process = None  # set by kernel.spawn
        #: debug label for compute events, built once (compute() is hot)
        self._compute_label = f"compute:{name}"

    def compute(self, amount_us: float) -> Event:
        """Request *amount_us* of CPU; the event fires when fully served."""
        if amount_us < 0:
            raise ValueError(f"negative compute amount {amount_us}")
        self.requests += 1
        if amount_us == 0:
            ev = self.kernel.env.event()
            ev.succeed()
            return ev
        return self.kernel._submit(self, amount_us)

    def __repr__(self) -> str:
        return f"<Task {self.name!r} prio={self.priority} cpu={self.cpu_time_us:.0f}us>"
