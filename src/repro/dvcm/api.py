"""Host-side DVCM API.

"The DVCM appears to the application program as a memory-mapped device,
offering certain instructions, controlled via control registers, and
sharing selected memory pages with the application." Host application
threads call DVCM instructions through this interface; each call marshals
an I2O message across the PCI segment and (synchronously) awaits the reply.

The call itself is cheap for the *host* — the heavy lifting happens on the
NI — but it does consume PCI bandwidth for the message frame and any bulk
payload (e.g. a media frame pushed from host memory to NI memory).

Requests are retried: an I2O frame can be lost between host and NI (see
:mod:`repro.faults`), so a call that sees no reply within ``timeout_us``
retransmits the *same* message frame (same msg_id) with exponential
backoff, up to ``max_retries`` times. The NI runtime dedups by msg_id
(at-most-once execution), so retransmits are safe even when the original
was merely slow rather than lost.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim import Environment, Event

from .messages import I2OMessage, MessageQueuePair

__all__ = ["VCMInterface", "VCMError", "VCMTimeout", "VCMPeerDown"]


class VCMError(RuntimeError):
    """An instruction returned an error reply."""


class VCMTimeout(VCMError):
    """No reply arrived within the retry budget (NI dead or link severed)."""


class VCMPeerDown(VCMError):
    """The target NI/peer is known dead — retrying cannot help.

    Distinct from :class:`VCMTimeout` (which may just be congestion) so
    failure detectors and callers can react immediately instead of burning
    the whole retry budget.
    """


class VCMInterface:
    """One host application's handle onto a card's DVCM.

    Parameters
    ----------
    timeout_us:
        Reply wait before the first retransmission (doubles per retry).
    max_retries:
        Retransmissions after the initial post; 0 restores fire-once.
    """

    def __init__(
        self,
        env: Environment,
        queues: MessageQueuePair,
        name: str = "app",
        timeout_us: float = 50_000.0,
        max_retries: int = 4,
        card=None,
    ) -> None:
        if timeout_us <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self.env = env
        self.queues = queues
        self.name = name
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        #: the card behind the queue pair, when known: calls fail fast with
        #: :class:`VCMPeerDown` instead of timing out against a crashed NI
        self.card = card
        self.calls = 0
        self.retries = 0
        self.timeouts = 0
        self.peer_down_errors = 0

    def call(
        self,
        function: str,
        payload: Optional[dict[str, Any]] = None,
        bulk_bytes: int = 0,
        timeout_us: Optional[float] = None,
    ) -> Generator[Event, None, Any]:
        """Process: invoke *function* on the NI and return its result.

        ``bulk_bytes`` is DMA'd with the message (a frame body handed from
        host memory to NI memory, for example).
        """
        message = I2OMessage(
            function=function,
            payload=payload if payload is not None else {},
            bulk_bytes=bulk_bytes,
        )
        wait_us = timeout_us if timeout_us is not None else self.timeout_us
        for attempt in range(self.max_retries + 1):
            if self.card is not None and self.card.crashed:
                self.peer_down_errors += 1
                raise VCMPeerDown(f"{function}: card {self.card.name} is down")
            yield from self.queues.post(message)
            reply_ev = self.queues.wait_reply(message.msg_id)
            result = yield reply_ev | self.env.timeout(wait_us)
            if reply_ev in result:
                reply = result[reply_ev]
                # scavenge surplus replies a retransmit may have produced
                self.queues.outbound.items[:] = [
                    r for r in self.queues.outbound.items
                    if r.msg_id != message.msg_id
                ]
                self.calls += 1
                if reply.status != "ok":
                    raise VCMError(f"{function}: {reply.result}")
                return reply.result
            # no reply in time: cancel the stale wait, back off, retransmit
            self.queues.outbound.cancel(reply_ev)
            self.timeouts += 1
            if attempt < self.max_retries:
                self.retries += 1
                wait_us *= 2.0
        if self.card is not None and self.card.crashed:
            # the card died while we were waiting out the last attempt
            self.peer_down_errors += 1
            raise VCMPeerDown(f"{function}: card {self.card.name} is down")
        raise VCMTimeout(
            f"{function}: no reply after {self.max_retries + 1} attempts"
        )

    def __repr__(self) -> str:
        return f"<VCMInterface {self.name!r} calls={self.calls}>"
