"""Host-side DVCM API.

"The DVCM appears to the application program as a memory-mapped device,
offering certain instructions, controlled via control registers, and
sharing selected memory pages with the application." Host application
threads call DVCM instructions through this interface; each call marshals
an I2O message across the PCI segment and (synchronously) awaits the reply.

The call itself is cheap for the *host* — the heavy lifting happens on the
NI — but it does consume PCI bandwidth for the message frame and any bulk
payload (e.g. a media frame pushed from host memory to NI memory).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim import Environment, Event

from .messages import I2OMessage, MessageQueuePair

__all__ = ["VCMInterface", "VCMError"]


class VCMError(RuntimeError):
    """An instruction returned an error reply."""


class VCMInterface:
    """One host application's handle onto a card's DVCM."""

    def __init__(self, env: Environment, queues: MessageQueuePair, name: str = "app") -> None:
        self.env = env
        self.queues = queues
        self.name = name
        self.calls = 0

    def call(
        self,
        function: str,
        payload: Optional[dict[str, Any]] = None,
        bulk_bytes: int = 0,
    ) -> Generator[Event, None, Any]:
        """Process: invoke *function* on the NI and return its result.

        ``bulk_bytes`` is DMA'd with the message (a frame body handed from
        host memory to NI memory, for example).
        """
        message = I2OMessage(
            function=function,
            payload=payload if payload is not None else {},
            bulk_bytes=bulk_bytes,
        )
        yield from self.queues.post(message)
        reply = yield self.queues.wait_reply(message.msg_id)
        self.calls += 1
        if reply.status != "ok":
            raise VCMError(f"{function}: {reply.result}")
        return reply.result

    def __repr__(self) -> str:
        return f"<VCMInterface {self.name!r} calls={self.calls}>"
