"""I2O-style message passing between host and NI.

The I2O specification "allows portable device driver development by
defining a message-passing protocol between the host and peer I/O devices".
The DVCM's host↔NI control path rides on it: the host posts request
messages into the card's inbound queue, the NI runtime posts replies to the
outbound queue.

Costs: posting a message is a handful of PIO word writes across the PCI
segment (the message frame header), plus a DMA for any bulk payload. Both
are charged through the :mod:`repro.hw.pci` primitives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.hw.pci import PCISegment
from repro.sim import Environment, Event, Store

__all__ = ["I2OMessage", "I2OReply", "MessageQueuePair", "HEADER_WORDS"]

#: 32-bit words in an I2O message frame header (posted via PIO)
HEADER_WORDS = 8

_msg_ids = itertools.count(1)


@dataclass
class I2OMessage:
    """A request message frame."""

    function: str
    payload: dict[str, Any] = field(default_factory=dict)
    #: bulk payload size moved by DMA alongside the message (0 = none)
    bulk_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    posted_at: float = 0.0


@dataclass
class I2OReply:
    """A reply frame for a previously posted message."""

    msg_id: int
    status: str = "ok"
    result: Any = None


class MessageQueuePair:
    """The inbound/outbound circular message queues of one I2O card."""

    def __init__(self, env: Environment, segment: PCISegment, name: str = "i2o") -> None:
        self.env = env
        self.segment = segment
        self.name = name
        self.inbound: Store = Store(env, name=f"{name}.inbound")
        self.outbound: Store = Store(env, name=f"{name}.outbound")
        self.posted = 0
        self.replied = 0
        self.dropped = 0
        self.duplicated = 0

    # -- host side --------------------------------------------------------------
    def post(self, message: I2OMessage) -> Generator[Event, None, None]:
        """Process (host side): post *message* into the inbound queue.

        Charges the PIO header writes and the bulk DMA (if any) on the PCI
        segment before the message becomes visible to the NI.
        """
        message.posted_at = self.env.now
        obs = self.env.obs
        sp = (
            obs.begin(
                "i2o",
                track=f"card:{self.name}",
                fn=message.function,
                msg_id=message.msg_id,
            )
            if obs is not None
            else None
        )
        for _ in range(HEADER_WORDS):
            yield from self.segment.pio_write()
        if message.bulk_bytes > 0:
            yield from self.segment.transfer(message.bulk_bytes)
        self.posted += 1
        if obs is not None:
            obs.end(sp)
            obs.count("i2o.posted", queue=self.name)
        plane = self.env.fault_plane
        if plane is not None:
            if plane.message_dropped(self.name):
                # the frame vanished on the bus: PCI cost paid, nothing
                # arrives — callers recover via the VCMInterface retry path
                self.dropped += 1
                if obs is not None:
                    obs.count("i2o.dropped", queue=self.name)
                return
            if plane.message_duplicated(self.name):
                # bridge retry: the same frame (same msg_id) lands twice;
                # the runtime's at-most-once dedup executes it only once
                self.duplicated += 1
                yield self.inbound.put(message)
        yield self.inbound.put(message)

    def wait_reply(self, msg_id: int) -> Event:
        """Event (host side): the reply frame for *msg_id*."""
        return self.outbound.get(filter=lambda r: r.msg_id == msg_id)

    # -- NI side ------------------------------------------------------------------
    def receive(self) -> Event:
        """Event (NI side): next posted message."""
        return self.inbound.get()

    def reply(self, reply: I2OReply) -> Generator[Event, None, None]:
        """Process (NI side): post a reply to the outbound queue."""
        # Outbound frame is read by the host with PIO; charge a short burst.
        for _ in range(HEADER_WORDS // 2):
            yield from self.segment.pio_read()
        self.replied += 1
        obs = self.env.obs
        if obs is not None:
            obs.count("i2o.replied", queue=self.name)
        plane = self.env.fault_plane
        if plane is not None:
            if plane.message_dropped(self.name):
                # reply frame lost on the bus: the host retries the request
                # (calls) or the watchdog misses a beat (heartbeats)
                self.dropped += 1
                if obs is not None:
                    obs.count("i2o.dropped", queue=self.name)
                return
            if plane.message_duplicated(self.name):
                self.duplicated += 1
                yield self.outbound.put(reply)
        yield self.outbound.put(reply)

    def __repr__(self) -> str:
        return (
            f"<MessageQueuePair {self.name!r} posted={self.posted} "
            f"replied={self.replied}>"
        )
