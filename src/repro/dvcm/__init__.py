"""The Distributed Virtual Communication Machine (DVCM).

Host-side API (memory-mapped instruction calls over I2O messages), NI-side
runtime with run-time-loadable extension modules, and the media-scheduler
extension the paper builds on top.
"""

from .api import VCMError, VCMInterface, VCMPeerDown, VCMTimeout
from .cluster import DVCM_PORT, DVCMNode, RemoteCallError, RemoteVCM
from .extension import ExtensionModule, MediaSchedulerExtension
from .messages import HEADER_WORDS, I2OMessage, I2OReply, MessageQueuePair
from .runtime import VCMRuntime

__all__ = [
    "VCMInterface",
    "VCMError",
    "VCMTimeout",
    "VCMPeerDown",
    "VCMRuntime",
    "ExtensionModule",
    "MediaSchedulerExtension",
    "I2OMessage",
    "I2OReply",
    "MessageQueuePair",
    "HEADER_WORDS",
    "DVCMNode",
    "RemoteVCM",
    "RemoteCallError",
    "DVCM_PORT",
]
