"""The *distributed* VCM: cluster-wide instruction invocation.

"A cluster-wide, programmable distributed virtual communication machine
(DVCM) executes 'close' to the network, on the CoProcessors ... The
cluster-wide services executed by this machine are available to nodes'
application programs as communication instructions."

:class:`DVCMNode` exports one NI's :class:`~repro.dvcm.runtime.VCMRuntime`
onto the SAN: a dispatcher task accepts TCP connections from peer nodes and
executes the instructions they request, sending results back on the same
connection. :class:`RemoteVCM` is the caller's side — it lazily opens one
TCP connection per peer and multiplexes calls over it.

Everything rides the board-resident transports in :mod:`repro.net`, so
remote invocation works across a lossy SAN and never touches a host bus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.hw.ethernet import EthernetPort, StackCosts
from repro.net.tcp import TCPConnection, TCPError, TCPStack
from repro.sim import Environment, Event, Store

from .api import VCMPeerDown
from .messages import I2OMessage
from .runtime import VCMRuntime

__all__ = ["DVCM_PORT", "DVCMNode", "RemoteVCM", "RemoteCallError"]

#: well-known TCP port of the DVCM dispatcher on every node
DVCM_PORT = 6960

#: serialized request/reply envelope sizes (headers + marshalled payload)
_ENVELOPE_BYTES = 64

_call_ids = itertools.count(1)


class RemoteCallError(RuntimeError):
    """A remote instruction failed (transport ok, execution failed)."""


@dataclass
class _Request:
    call_id: int
    function: str
    payload: dict[str, Any]
    payload_bytes: int


@dataclass
class _Reply:
    call_id: int
    status: str
    result: Any


class DVCMNode:
    """Server side: one node's NI runtime exported to the cluster."""

    def __init__(
        self,
        env: Environment,
        runtime: VCMRuntime,
        eth_port: EthernetPort,
        stack: StackCosts,
        name: Optional[str] = None,
    ) -> None:
        self.env = env
        self.runtime = runtime
        self.name = name or f"dvcm:{eth_port.name}"
        self.tcp = TCPStack(env, eth_port, stack, name=f"{self.name}.tcp")
        self._accept = self.tcp.listen(DVCM_PORT)
        self.remote_calls_served = 0
        env.process(self._acceptor(), name=f"{self.name}.acceptor")

    @property
    def san_address(self) -> str:
        """The name peers dial (the NI's SAN-facing Ethernet port)."""
        return self.tcp.eth_port.name

    def _acceptor(self) -> Generator:
        while True:
            conn: TCPConnection = yield self._accept.get()
            self.env.process(self._serve(conn), name=f"{self.name}.serve")

    def _serve(self, conn: TCPConnection) -> Generator:
        while True:
            record = yield conn.recv()
            request = record["data"]
            if not isinstance(request, _Request):
                continue  # foreign traffic on our port: ignore
            reply = self._execute(request)
            try:
                conn.send(_ENVELOPE_BYTES, data=reply)
            except TCPError:
                return  # peer connection died mid-serve: stop this server

    def _execute(self, request: _Request) -> _Reply:
        self.remote_calls_served += 1
        obs = self.env.obs
        if obs is not None:
            obs.count("dvcm.remote_calls_served", node=self.name)
        # reuse the local message machinery: same handlers, same errors
        inner = self.runtime._execute(
            I2OMessage(function=request.function, payload=request.payload)
        )
        return _Reply(call_id=request.call_id, status=inner.status, result=inner.result)


class RemoteVCM:
    """Caller side: invoke instructions on peer nodes' DVCMs."""

    def __init__(
        self,
        env: Environment,
        eth_port: EthernetPort,
        stack: StackCosts,
        name: Optional[str] = None,
        peer_poll_us: float = 100_000.0,
    ) -> None:
        self.env = env
        self.name = name or f"rvcm:{eth_port.name}"
        self.tcp = TCPStack(env, eth_port, stack, name=f"{self.name}.tcp")
        self._conns: dict[str, TCPConnection] = {}
        self._pending: dict[str, Store] = {}
        self._next_port = 40_000
        #: how often a waiting call re-checks its connection for an abort
        #: (TCP's go-back-N gives up asynchronously; recv never returns)
        self.peer_poll_us = peer_poll_us
        self.calls = 0
        self.peer_down_errors = 0

    def call(
        self,
        peer_address: str,
        function: str,
        payload: Optional[dict[str, Any]] = None,
        payload_bytes: int = 0,
    ) -> Generator[Event, None, Any]:
        """Process: run *function* on the DVCM at *peer_address*.

        ``payload_bytes`` sizes the marshalled request on the wire (bulk
        data rides the same reliable connection).

        Raises :class:`~repro.dvcm.api.VCMPeerDown` when the peer is
        unreachable: the dial fails, the connection is already reset, or
        TCP aborts (retry budget exhausted) while the call is in flight.
        The broken connection is discarded so a later call re-dials.
        """
        obs = self.env.obs
        sp = (
            obs.begin("rpc", track=f"node:{self.name}", fn=function, peer=peer_address)
            if obs is not None
            else None
        )
        conn = self._conns.get(peer_address)
        if conn is None:
            try:
                conn = yield from self._dial(peer_address)
            except TCPError as exc:
                self.peer_down_errors += 1
                if obs is not None:
                    obs.end(sp, error="peer_down")
                    obs.count("dvcm.peer_down_errors", node=self.name)
                raise VCMPeerDown(f"{peer_address}: {exc}") from exc
        request = _Request(
            call_id=next(_call_ids),
            function=function,
            payload=payload if payload is not None else {},
            payload_bytes=payload_bytes,
        )
        try:
            conn.send(_ENVELOPE_BYTES + max(0, payload_bytes), data=request)
        except TCPError as exc:
            self._discard(peer_address)
            self.peer_down_errors += 1
            if obs is not None:
                obs.end(sp, error="peer_down")
                obs.count("dvcm.peer_down_errors", node=self.name)
            raise VCMPeerDown(f"{peer_address}: {exc}") from exc
        replies = self._pending[peer_address]
        reply_ev = replies.get(filter=lambda r: r.call_id == request.call_id)
        while True:
            result = yield reply_ev | self.env.timeout(self.peer_poll_us)
            if reply_ev in result:
                reply: _Reply = result[reply_ev]
                break
            if conn.aborted or conn.state != "established":
                # go-back-N gave up: the peer (or the path to it) is dead
                replies.cancel(reply_ev)
                self._discard(peer_address)
                self.peer_down_errors += 1
                if obs is not None:
                    obs.end(sp, error="peer_down")
                    obs.count("dvcm.peer_down_errors", node=self.name)
                raise VCMPeerDown(
                    f"{peer_address}: connection reset while awaiting "
                    f"{function} reply"
                )
        self.calls += 1
        if obs is not None:
            obs.end(sp, status=reply.status)
            obs.count("dvcm.calls", node=self.name)
        if reply.status != "ok":
            raise RemoteCallError(f"{function} on {peer_address}: {reply.result}")
        return reply.result

    def _discard(self, peer_address: str) -> None:
        """Forget a broken connection so the next call re-dials."""
        self._conns.pop(peer_address, None)
        self._pending.pop(peer_address, None)

    def _dial(self, peer_address: str) -> Generator[Event, None, TCPConnection]:
        src_port = self._next_port
        self._next_port += 1
        conn = yield from self.tcp.connect(peer_address, DVCM_PORT, src_port=src_port)
        self._conns[peer_address] = conn
        self._pending[peer_address] = Store(self.env, name=f"{self.name}.replies")
        self.env.process(self._reader(peer_address, conn), name=f"{self.name}.reader")
        return conn

    def _reader(self, peer_address: str, conn: TCPConnection) -> Generator:
        replies = self._pending[peer_address]
        while True:
            record = yield conn.recv()
            reply = record["data"]
            if isinstance(reply, _Reply):
                replies.put_nowait(reply)

    def __repr__(self) -> str:
        return f"<RemoteVCM {self.name!r} peers={sorted(self._conns)} calls={self.calls}>"
