"""DVCM extension modules.

"The third set of DVCM functions are the extensions that support specific
applications' needs" — run-time loadable modules that add *instructions* to
the virtual communication machine. An instruction is a named handler the
NI runtime dispatches messages to; handlers run on the NI CPU (charged
compute) and may be simulation processes.

:class:`MediaSchedulerExtension` is the paper's flagship extension: it wraps
the DWCS :class:`~repro.core.engine.StreamingEngine` behind four
instructions (``open_stream``, ``submit_frame``, ``stream_stats``,
``close_stream``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.core.attributes import StreamSpec
from repro.core.engine import StreamingEngine
from repro.media.frames import MediaFrame

__all__ = ["ExtensionModule", "Instruction", "MediaSchedulerExtension"]

#: handler(payload) -> result (plain callable; the runtime charges compute)
Instruction = Callable[[dict[str, Any]], Any]


class ExtensionModule:
    """Base class: a named bundle of DVCM instructions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: dict[str, Instruction] = {}

    def provide(self, name: str, handler: Instruction) -> None:
        """Register instruction *name* (qualified as '<module>.<name>')."""
        if name in self._instructions:
            raise ValueError(f"instruction {name!r} already provided by {self.name!r}")
        self._instructions[name] = handler

    def instructions(self) -> dict[str, Instruction]:
        return dict(self._instructions)

    def qualified(self, name: str) -> str:
        return f"{self.name}.{name}"

    def __repr__(self) -> str:
        return f"<ExtensionModule {self.name!r} {sorted(self._instructions)}>"


class MediaSchedulerExtension(ExtensionModule):
    """The NI-resident media scheduler as a DVCM extension."""

    def __init__(self, engine: StreamingEngine) -> None:
        super().__init__("media")
        self.engine = engine
        self.provide("open_stream", self._open_stream)
        self.provide("submit_frame", self._submit_frame)
        self.provide("stream_stats", self._stream_stats)
        self.provide("close_stream", self._close_stream)

    # -- instruction handlers ----------------------------------------------------
    def _open_stream(self, payload: dict[str, Any]) -> str:
        spec = StreamSpec(
            stream_id=payload["stream_id"],
            period_us=float(payload["period_us"]),
            loss_x=int(payload["loss_x"]),
            loss_y=int(payload["loss_y"]),
            drop_late=bool(payload.get("drop_late", True)),
        )
        self.engine.scheduler.add_stream(spec)
        return spec.stream_id

    def _submit_frame(self, payload: dict[str, Any]) -> int:
        frame: MediaFrame = payload["frame"]
        desc = self.engine.submit(frame, address=payload.get("address", 0))
        return desc.frame.seqno

    def _stream_stats(self, payload: dict[str, Any]) -> dict[str, Any]:
        sid = payload["stream_id"]
        state = self.engine.scheduler.streams[sid]
        return {
            "serviced": state.serviced,
            "dropped": state.dropped,
            "sent_late": state.sent_late,
            "violations": state.violations,
            "queued": self.engine.scheduler.queue_depth(sid),
        }

    def _close_stream(self, payload: dict[str, Any]) -> bool:
        self.engine.scheduler.remove_stream(payload["stream_id"])
        return True
