"""The NI-side DVCM runtime.

Runs as a VxWorks task on the card: receives I2O messages, looks up the
target instruction across the loaded extension modules, executes the
handler (charging a per-message dispatch cost on the NI CPU), and posts the
reply. Extensions may be loaded and unloaded at run time — "the services
implemented by the DVCM vary over time, in keeping with the needs of
current cluster applications".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator, Optional

from repro.hw.cpu import CPU
from repro.rtos.task import Task
from repro.sim import Environment

from .extension import ExtensionModule, Instruction
from .messages import I2OMessage, I2OReply, MessageQueuePair

__all__ = ["VCMRuntime"]

#: NI CPU cycles to receive, decode, and dispatch one message frame
MESSAGE_DISPATCH_CYCLES = 900.0

#: reply frames remembered for at-most-once dedup of duplicated/retried
#: message ids (bounded so a long-lived runtime stays bounded)
REPLY_CACHE_ENTRIES = 512


class VCMRuntime:
    """Dispatch loop + extension registry on one NI."""

    def __init__(
        self,
        env: Environment,
        queues: MessageQueuePair,
        cpu: CPU,
        name: str = "vcm",
        card=None,
    ) -> None:
        self.env = env
        self.queues = queues
        self.cpu = cpu
        self.name = name
        #: the NI card this runtime's firmware lives on, when known: a
        #: crashed card's runtime serves nothing (messages die unanswered,
        #: which is what the host-side peer-down detection keys off)
        self.card = card
        self._instructions: dict[str, Instruction] = {}
        self._modules: dict[str, ExtensionModule] = {}
        self.messages_handled = 0
        self.messages_lost_to_crash = 0
        self.errors = 0
        #: at-most-once execution: replies cached by msg_id so a duplicated
        #: or host-retransmitted request re-sends its reply instead of
        #: executing the handler twice
        self._reply_cache: OrderedDict[int, I2OReply] = OrderedDict()
        self.duplicates_deduped = 0

    # -- extension management ----------------------------------------------------
    def load_extension(self, module: ExtensionModule) -> None:
        if module.name in self._modules:
            raise ValueError(f"extension {module.name!r} already loaded")
        for name, handler in module.instructions().items():
            qualified = module.qualified(name)
            if qualified in self._instructions:  # pragma: no cover - guarded above
                raise ValueError(f"instruction collision: {qualified!r}")
            self._instructions[qualified] = handler
        self._modules[module.name] = module

    def unload_extension(self, name: str) -> None:
        module = self._modules.pop(name, None)
        if module is None:
            raise KeyError(f"extension {name!r} not loaded")
        for iname in module.instructions():
            del self._instructions[module.qualified(iname)]

    @property
    def instruction_names(self) -> list[str]:
        return sorted(self._instructions)

    # -- the dispatch task ----------------------------------------------------------
    def task_body(self, task: Task) -> Generator:
        """VxWorks task body: serve messages forever (at-most-once)."""
        while True:
            message: I2OMessage = yield self.queues.receive()
            obs = self.env.obs
            if self.card is not None and self.card.crashed:
                # wedged firmware: the frame is consumed but never served
                # (no reply, no compute) — callers hit their timeout or
                # peer-down path
                self.messages_lost_to_crash += 1
                if obs is not None:
                    obs.count("vcm.lost_to_crash", runtime=self.name)
                continue
            sp = (
                obs.begin(
                    "firmware",
                    track=f"cpu:{self.cpu.name}",
                    fn=message.function,
                    msg_id=message.msg_id,
                )
                if obs is not None
                else None
            )
            yield task.compute(self.cpu.time_us(MESSAGE_DISPATCH_CYCLES))
            cached = self._reply_cache.get(message.msg_id)
            if cached is not None:
                # duplicate delivery (bus fault or host retransmit): do not
                # execute again — repost the remembered reply
                self.duplicates_deduped += 1
                yield from self.queues.reply(cached)
                if obs is not None:
                    obs.end(sp, deduped=True)
                    obs.count("vcm.duplicates_deduped", runtime=self.name)
                continue
            reply = self._execute(message)
            self._reply_cache[message.msg_id] = reply
            while len(self._reply_cache) > REPLY_CACHE_ENTRIES:
                self._reply_cache.popitem(last=False)
            yield from self.queues.reply(reply)
            if obs is not None:
                obs.end(sp, status=reply.status)
                obs.count("vcm.messages_handled", runtime=self.name)
                if reply.status != "ok":
                    obs.count("vcm.errors", runtime=self.name)

    def execute_local(self, function: str, payload: dict[str, Any]) -> Any:
        """Invoke an instruction directly (NI-local caller, no messaging).

        Used by producers co-resident on the card — the path-C case where
        frames never cross the PCI bus at all.
        """
        reply = self._execute(I2OMessage(function=function, payload=payload))
        if reply.status != "ok":
            raise RuntimeError(f"{function}: {reply.result}")
        return reply.result

    def _execute(self, message: I2OMessage) -> I2OReply:
        handler = self._instructions.get(message.function)
        if handler is None:
            self.errors += 1
            return I2OReply(
                msg_id=message.msg_id,
                status="error",
                result=f"unknown instruction {message.function!r}",
            )
        try:
            result = handler(message.payload)
        except Exception as err:  # deliberate: errors travel back as replies
            self.errors += 1
            return I2OReply(msg_id=message.msg_id, status="error", result=str(err))
        self.messages_handled += 1
        return I2OReply(msg_id=message.msg_id, status="ok", result=result)

    def __repr__(self) -> str:
        return (
            f"<VCMRuntime {self.name!r} modules={sorted(self._modules)} "
            f"handled={self.messages_handled}>"
        )
