"""TTP: a TTPoE-style reliable L2 transport for the NI firmware.

The paper offloads the streaming wire path onto the network co-processor;
the 2024 incarnation of that bet is a hardware-offloaded reliable
transport running *directly over Ethernet L2* (Tesla's TTPoE). This
module models such a protocol beside the existing UDP/TCP paths, following
the state machine pinned down in ``docs/ttp-spec.md``:

* **3-way tagged open** — OPEN / OPEN-ACK / OPEN-NACK. The initiator walks
  CLOSED → OPEN_SENT → OPEN; the responder CLOSED → OPEN_RECV → OPEN (it
  completes on the first in-tag packet from the peer). A duplicate OPEN
  (retransmitted across a lossy link) replays the *cached* OPEN-ACK rather
  than minting a second link.
* **per-packet (tag, seq) ids** — every link incarnation carries a fresh
  tag; payload packets carry a per-link sequence number that wraps at
  ``seq_mod`` on the wire while both ends keep unbounded counters
  internally (the unwrap window is ``seq_mod // 2``).
* **cumulative ACK + bounded retransmit queue** — the sender keeps at most
  ``window`` unacked packets; ACKs carry the receiver's next expected
  sequence and free everything below it.
* **retransmit-on-NACK** — a receiver that sees a gap NACKs the missing
  sequence once per gap; the sender goes-back-N immediately instead of
  waiting out the retransmission timer. The timer (exponential backoff,
  capped, ``max_retries`` budget) remains the fallback for tail loss,
  where no later packet arrives to expose the gap.
* **NOC-style credit flow control** — the receiver grants ``credits``
  buffer slots at open; every ACK/NACK re-advertises the grant minus what
  is buffered out-of-order. A sender with no credit stalls (counted) until
  an ACK replenishes it.
* **CLOSE quiesce** — CLOSE is only sent once the window has drained
  (nothing pending, nothing unacked), then CLOSE / CLOSE-ACK tears the
  link down; a retransmitted CLOSE is re-acked safely.

Fault hooks mirror the I2O message plane: the transmit path consults the
environment's fault plane (``msg-drop`` / ``msg-dup`` windows keyed by the
stack name), so a dropped packet pays its stack cost and vanishes before
the wire and a duplicated one is framed and sent twice — and link loss
applies at the switch exactly as for every other transport. The obs plane
sees TTP like it sees TCP: ``stack`` spans with ``proto="ttp"`` and
``ttp.*`` counters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.hw.ethernet import EthernetPort, NetFrame, StackCosts
from repro.sim import Environment, Event, Store

__all__ = ["TTPPacket", "TTPStack", "TTPLink", "TTPError", "TTP_HEADER_BYTES"]

#: TTP header on the wire (L2 shim + opcode + tag/seq/ack/credit fields)
TTP_HEADER_BYTES = 26

_tag_ids = itertools.count(1)
_record_ids = itertools.count(1)


class TTPError(RuntimeError):
    """Link-level failure (open refused/timed out, link reset, ...)."""


@dataclass
class TTPPacket:
    """One TTP packet in flight."""

    kind: str  # 'open'|'open-ack'|'open-nack'|'payload'|'ack'|'nack'|'close'|'close-ack'
    src_host: str
    src_port: int
    dst_port: int
    #: link incarnation id, assigned by the initiator at open
    tag: int = 0
    #: wire sequence number (payload), wrapped modulo the link's seq_mod
    seq: int = 0
    #: cumulative: wire sequence of the next packet the ACK sender expects
    ack: int = 0
    #: receiver's credit grant riding this packet (open-ack/ack/nack)
    credit: int = 0
    payload_bytes: int = 0
    #: application record this packet belongs to (delivered on completion)
    record_id: int = 0
    #: total packets in the record (reassembly bookkeeping)
    record_segments: int = 1
    data: Any = None
    #: open-nack diagnostic
    reason: str = ""
    #: set by the sender loop on first wire transmission, so a window
    #: refill pass never re-sends a packet an earlier pass already put on
    #: the wire (retransmits go through the explicit go-back-N path)
    sent_once: bool = False


@dataclass
class _Record:
    """A queued application send: one message split into packets."""

    record_id: int
    nbytes: int
    data: Any
    first_seq: int
    n_packets: int


class TTPLink:
    """One established (or establishing) TTP link endpoint."""

    def __init__(
        self,
        stack: "TTPStack",
        local_port: int,
        peer_host: str,
        peer_port: int,
        tag: int,
        initiator: bool,
        mtu: int,
        window: int,
        credits: int,
        seq_mod: int,
        retx_us: float,
        retx_max_us: Optional[float] = None,
        max_retries: int = 20,
        jitter_frac: float = 0.0,
        rng=None,
    ) -> None:
        if seq_mod < 2 * max(window, 1):
            raise ValueError("seq_mod must be at least twice the window")
        self.stack = stack
        self.env = stack.env
        self.local_port = local_port
        self.peer_host = peer_host
        self.peer_port = peer_port
        self.tag = tag
        self.initiator = initiator
        self.mtu = mtu
        self.window = window
        #: buffer slots this end grants its peer
        self.credits = credits
        self.seq_mod = seq_mod
        self.retx_us = retx_us
        self.retx_max_us = retx_max_us if retx_max_us is not None else 16.0 * retx_us
        self.max_retries = max_retries
        self.jitter_frac = jitter_frac
        self._rng = rng
        self._retx_cur = retx_us
        self._consecutive_retx = 0
        self.aborted = False
        self.state = "closed"  # closed|open-sent|open-recv|open|close-wait|reset
        # -- sender side -----------------------------------------------------
        self._next_seq = 0  # unbounded; wire carries seq % seq_mod
        self._send_base = 0  # oldest unacked (unbounded)
        self._unacked: dict[int, TTPPacket] = {}
        self._pending: list[_Record] = []
        #: the peer's last advertised credit grant (learned at open)
        self._peer_credit = 0
        self._send_signal: Optional[Event] = None
        self._sender_proc = None
        #: record id -> (data, last unbounded seq) while any packet unacked;
        #: the abort path turns this into the lost-record account
        self._unacked_records: dict[int, tuple[Any, int]] = {}
        # -- receiver side ---------------------------------------------------
        self._rcv_next = 0  # unbounded
        self._out_of_order: dict[int, TTPPacket] = {}
        self._assembling: dict[int, list[TTPPacket]] = {}
        #: in-order application records for the app (dicts like TCP's inbox)
        self.inbox: Store = Store(self.env, name=f"ttp:{local_port}.inbox")
        #: rcv_next value already NACKed (one NACK per gap instance)
        self._nacked_at: Optional[int] = None
        # -- handshake / teardown events ---------------------------------------
        self._opened = self.env.event(name=f"ttp:{local_port}.opened")
        self._closed = self.env.event(name=f"ttp:{local_port}.closed")
        self._open_nack_reason: Optional[str] = None
        #: responder's cached OPEN-ACK, replayed on duplicate OPEN
        self._open_ack: Optional[TTPPacket] = None
        # -- stats -------------------------------------------------------------
        self.packets_sent = 0
        self.packets_received = 0
        self.retransmissions = 0
        self.nack_retransmissions = 0
        self.nacks_sent = 0
        self.nacks_received = 0
        self.duplicates_dropped = 0
        self.stale_tag_drops = 0
        self.credit_stalls = 0
        self.records_sent = 0
        self.records_delivered = 0
        #: record ids the abort path declared undeliverable
        self.lost_record_ids: list[int] = []

    # -- application API -----------------------------------------------------
    def send(self, nbytes: int, data: Any = None, record_id: Optional[int] = None) -> int:
        """Queue an application record for reliable delivery; returns its id."""
        if self.state not in ("open", "open-sent", "open-recv"):
            raise TTPError(f"send on {self.state} link")
        if nbytes <= 0:
            raise ValueError("record size must be positive")
        n_packets = max(1, -(-nbytes // self.mtu))
        rid = record_id if record_id is not None else next(_record_ids)
        self._pending.append(
            _Record(
                record_id=rid,
                nbytes=nbytes,
                data=data,
                first_seq=-1,
                n_packets=n_packets,
            )
        )
        self.records_sent += 1
        self._kick_sender()
        return rid

    def recv(self) -> Event:
        """Event: the next complete in-order application record."""
        return self.inbox.get()

    def close(self) -> Generator[Event, None, None]:
        """Process: quiesce the window, then CLOSE / CLOSE-ACK teardown."""
        while self._pending or self._unacked:
            if self.aborted:
                raise TTPError("link reset while quiescing")
            yield self.env.timeout(self.retx_us / 4)
        self.state = "close-wait"
        close = TTPPacket(
            kind="close",
            src_host=self.stack.eth_port.name,
            src_port=self.local_port,
            dst_port=self.peer_port,
            tag=self.tag,
        )
        for _attempt in range(8):
            yield from self.stack._transmit(close, self.peer_host)
            result = yield self._closed | self.env.timeout(self.retx_us)
            if self._closed in result:
                self.state = "closed"
                return
        raise TTPError("close timed out")

    # -- window algebra ------------------------------------------------------
    def _wrap(self, seq: int) -> int:
        return seq % self.seq_mod

    def _unwrap_rcv(self, wire_seq: int) -> Optional[int]:
        """The unbounded sequence a received wire seq stands for, or None
        when it falls outside the acceptance window (stale retransmit)."""
        delta = (wire_seq - self._rcv_next) % self.seq_mod
        if delta < self.seq_mod // 2:
            return self._rcv_next + delta
        return None

    def _unwrap_ack(self, wire_ack: int) -> Optional[int]:
        """The unbounded cumulative ack a wire ack stands for, or None when
        it acks nothing we have outstanding (stale ACK)."""
        delta = (wire_ack - self._send_base) % self.seq_mod
        if delta <= self._next_seq - self._send_base:
            return self._send_base + delta
        return None

    def _advertised_credit(self) -> int:
        """NOC-style grant: total slots minus packets buffered out of order
        (the only receive-side state a slow drain can pin)."""
        return max(0, self.credits - len(self._out_of_order))

    def _credit_window(self) -> int:
        """How many packets may be in flight right now."""
        return min(self.window, self._peer_credit)

    # -- sender machinery ----------------------------------------------------
    def _kick_sender(self) -> None:
        if self._send_signal is not None and not self._send_signal.triggered:
            self._send_signal.succeed()

    def _sender(self) -> Generator:
        env = self.env
        while True:
            progressed = self._fill_window()
            if (
                self._pending
                and len(self._unacked) >= self._credit_window()
                and self._credit_window() < self.window
            ):
                # the peer's grant, not our window, is what pinned the fill
                self.credit_stalls += 1
                self.stack._count("ttp.credit_stalls")
            if progressed:
                # snapshot: ACKs may pop packets while we yield mid-send
                for seq in sorted(self._unacked):
                    pkt = self._unacked.get(seq)
                    if pkt is None:
                        continue
                    if not pkt.sent_once:
                        pkt.sent_once = True
                        self.packets_sent += 1
                        yield from self.stack._transmit(pkt, self.peer_host)
            if not self._unacked and not self._pending:
                self._send_signal = env.event()
                yield self._send_signal
                self._send_signal = None
                continue
            base_before = self._send_base
            wait_us = self._retx_interval()
            timeout_ev = env.timeout(wait_us)
            self._send_signal = env.event()
            result = yield self._send_signal | timeout_ev
            self._send_signal = None
            if (
                timeout_ev in result
                and self._send_base == base_before
                and self._unacked
            ):
                self._consecutive_retx += 1
                self._trace(
                    "rto",
                    rto_us=wait_us,
                    attempt=self._consecutive_retx,
                    outstanding=len(self._unacked),
                )
                if self._consecutive_retx > self.max_retries:
                    self._abort()
                    return
                self._retransmit_outstanding(nacked=False)
                self._retx_cur = min(self._retx_cur * 2.0, self.retx_max_us)

    def _retransmit_outstanding(self, nacked: bool) -> None:
        """Go-back-N: resend every unacked packet (timer or NACK driven)."""
        outstanding = sorted(self._unacked)
        if not outstanding:
            return
        self.retransmissions += len(outstanding)
        if nacked:
            self.nack_retransmissions += len(outstanding)
        self.stack._count("ttp.retransmissions", len(outstanding))

        def resend() -> Generator:
            for seq in outstanding:
                pkt = self._unacked.get(seq)
                if pkt is None:
                    continue  # acked while the resends were in progress
                self.packets_sent += 1
                yield from self.stack._transmit(pkt, self.peer_host)

        self.env.process(resend(), name=f"ttp:{self.local_port}.retx")

    def _retx_interval(self) -> float:
        retx = self._retx_cur
        if self._rng is not None and self.jitter_frac > 0.0:
            retx *= 1.0 + self.jitter_frac * float(self._rng.random())
        return retx

    def _abort(self) -> None:
        """Give up after max_retries consecutive timeouts: the peer is gone.

        Every record still pending or unacked is declared lost — the
        accounting the zero-leak invariant audits against."""
        self.aborted = True
        self.state = "reset"
        lost = {rec.record_id for rec in self._pending}
        lost.update(self._unacked_records)
        self.lost_record_ids.extend(sorted(lost))
        self._trace("abort", retries=self._consecutive_retx, lost=len(lost))
        self.stack._count("ttp.aborts")
        self._unacked.clear()
        self._unacked_records.clear()
        self._pending.clear()

    def _fill_window(self) -> bool:
        progressed = False
        while self._pending and len(self._unacked) < self._credit_window():
            record = self._pending[0]
            if record.first_seq < 0:
                record.first_seq = self._next_seq
            emitted = self._next_seq - record.first_seq
            if emitted >= record.n_packets:
                self._pending.pop(0)
                continue
            is_last = emitted == record.n_packets - 1
            size = (
                record.nbytes - self.mtu * (record.n_packets - 1)
                if is_last
                else self.mtu
            )
            pkt = TTPPacket(
                kind="payload",
                src_host=self.stack.eth_port.name,
                src_port=self.local_port,
                dst_port=self.peer_port,
                tag=self.tag,
                seq=self._wrap(self._next_seq),
                payload_bytes=max(1, size),
                record_id=record.record_id,
                record_segments=record.n_packets,
                data=record.data if is_last else None,
            )
            self._unacked[self._next_seq] = pkt
            self._unacked_records.setdefault(
                record.record_id, (record.data, record.first_seq)
            )
            if is_last:
                self._unacked_records[record.record_id] = (
                    record.data,
                    self._next_seq,
                )
                self._pending.pop(0)
            self._next_seq += 1
            progressed = True
        return progressed

    # -- packet arrival (called by the stack's demux) ------------------------
    def _on_packet(self, pkt: TTPPacket) -> None:
        if pkt.tag != self.tag:
            # a stale incarnation's packet: not ours
            self.stale_tag_drops += 1
            return
        self.packets_received += 1
        if pkt.kind in ("ack", "nack"):
            self._on_ack(pkt)
            return
        if pkt.kind == "payload":
            self._on_payload(pkt)
            return
        if pkt.kind == "close":
            # the peer quiesced before closing: deliver-then-die is safe;
            # re-ack retransmitted CLOSEs even when already closed
            self.state = "closed"
            self._reply(
                TTPPacket(
                    kind="close-ack",
                    src_host=self.stack.eth_port.name,
                    src_port=self.local_port,
                    dst_port=self.peer_port,
                    tag=self.tag,
                )
            )
            if not self._closed.triggered:
                self._closed.succeed()
            return
        if pkt.kind == "close-ack":
            if not self._closed.triggered:
                self._closed.succeed()

    def _on_ack(self, pkt: TTPPacket) -> None:
        self._peer_credit = pkt.credit
        ack = self._unwrap_ack(pkt.ack)
        if ack is not None and ack > self._send_base:
            for seq in range(self._send_base, ack):
                self._unacked.pop(seq, None)
            self._send_base = ack
            for rid in [
                r
                for r, (_data, last_seq) in self._unacked_records.items()
                if last_seq < ack
            ]:
                del self._unacked_records[rid]
            # forward progress: the path works, undo the backoff
            self._retx_cur = self.retx_us
            self._consecutive_retx = 0
        if pkt.kind == "nack":
            self.nacks_received += 1
            self._trace("nack", ack=pkt.ack, outstanding=len(self._unacked))
            self._retransmit_outstanding(nacked=True)
        self._kick_sender()

    def _on_payload(self, pkt: TTPPacket) -> None:
        seq = self._unwrap_rcv(pkt.seq)
        if seq is None or seq in self._out_of_order:
            self.duplicates_dropped += 1
            self.stack._count("ttp.duplicates_dropped")
        elif seq < self._rcv_next + 2 * self.window:
            self._out_of_order[seq] = pkt
            self._drain_in_order()
        gap = bool(self._out_of_order)
        if gap and self._nacked_at != self._rcv_next:
            # first sight of this gap: ask for the hole explicitly
            self._nacked_at = self._rcv_next
            self.nacks_sent += 1
            self.stack._count("ttp.nacks_sent")
            self._send_control("nack")
        else:
            self._send_control("ack")

    def _drain_in_order(self) -> None:
        while self._rcv_next in self._out_of_order:
            pkt = self._out_of_order.pop(self._rcv_next)
            self._rcv_next += 1
            self._nacked_at = None
            parts = self._assembling.setdefault(pkt.record_id, [])
            parts.append(pkt)
            if len(parts) == pkt.record_segments:
                del self._assembling[pkt.record_id]
                self.records_delivered += 1
                self.inbox.put_nowait(
                    {
                        "nbytes": sum(p.payload_bytes for p in parts),
                        "data": parts[-1].data,
                        "record_id": pkt.record_id,
                    }
                )

    def _send_control(self, kind: str) -> None:
        self._reply(
            TTPPacket(
                kind=kind,
                src_host=self.stack.eth_port.name,
                src_port=self.local_port,
                dst_port=self.peer_port,
                tag=self.tag,
                ack=self._wrap(self._rcv_next),
                credit=self._advertised_credit(),
            )
        )

    def _reply(self, pkt: TTPPacket) -> None:
        self.env.process(
            self.stack._transmit(pkt, self.peer_host),
            name=f"ttp:{self.local_port}.reply",
        )

    def _trace(self, name: str, **fields: Any) -> None:
        tracer = self.stack.tracer
        if tracer is None:
            obs = self.stack._obs
            tracer = obs.tracer if obs is not None else None
        if tracer is not None and tracer.wants("ttp"):
            tracer.emit("ttp", name, port=self.local_port, tag=self.tag, **fields)

    def inflight_record_ids(self) -> set:
        """Record ids this endpoint is still responsible for (both sides)."""
        ids = {rec.record_id for rec in self._pending}
        ids.update(self._unacked_records)
        ids.update(self._assembling)
        ids.update(pkt.record_id for pkt in self._out_of_order.values())
        ids.update(item["record_id"] for item in self.inbox.items)
        return ids

    def __repr__(self) -> str:
        return (
            f"<TTPLink {self.local_port}->{self.peer_host}:{self.peer_port} "
            f"tag={self.tag} {self.state} unacked={len(self._unacked)} "
            f"rtx={self.retransmissions}>"
        )


class TTPStack:
    """TTP link endpoints multiplexed over one Ethernet attachment."""

    def __init__(
        self,
        env: Environment,
        eth_port: EthernetPort,
        stack: StackCosts,
        mtu: int = 1460,
        window: int = 8,
        credits: int = 16,
        seq_mod: int = 1 << 16,
        retx_us: float = 200_000.0,
        retx_max_us: Optional[float] = None,
        max_retries: int = 20,
        jitter_frac: float = 0.0,
        rng=None,
        tracer=None,
        name: Optional[str] = None,
    ) -> None:
        if mtu < 1 or window < 1 or credits < 1 or retx_us <= 0:
            raise ValueError("mtu, window, credits, retx must be positive")
        if seq_mod < 2 * window:
            raise ValueError("seq_mod must be at least twice the window")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self.env = env
        self.eth_port = eth_port
        self.stack = stack
        self.mtu = mtu
        self.window = window
        self.credits = credits
        self.seq_mod = seq_mod
        self.retx_us = retx_us
        self.retx_max_us = retx_max_us if retx_max_us is not None else 16.0 * retx_us
        self.max_retries = max_retries
        self.jitter_frac = jitter_frac
        self.rng = rng
        self.tracer = tracer
        self.name = name or f"ttp:{eth_port.name}"
        self._listeners: dict[int, Store] = {}
        self._links: dict[tuple[str, int, int], TTPLink] = {}
        self.packets_dropped_by_fault = 0
        self.packets_duplicated_by_fault = 0
        self.open_nacks_sent = 0
        self.open_ack_replays = 0
        # Pre-resolved hook slots: one instance-attribute load per packet
        # instead of chasing env.obs/env.fault_plane on every transmit.
        # Planes may install after construction (chaos wires the fault
        # plane once the stacks exist), so a watcher re-resolves the cache
        # whenever one binds or unbinds.
        self._obs = env.obs
        self._fault_plane = env.fault_plane
        env.add_hook_watcher(self._resolve_hooks)
        # Stacks sharing one port share ONE demux (same reasoning as the
        # TCP stack: two receive loops on one port steal frames round-robin
        # and strand packets on the wrong stack). The shared list object is
        # cached on every member, so delivery walks an instance attribute
        # rather than getattr-ing the port per packet.
        peers = getattr(eth_port, "_ttp_stacks", None)
        if peers is None:
            peers = []
            eth_port._ttp_stacks = peers  # type: ignore[attr-defined]
            env.process(self._demux(), name=f"{self.name}.demux")
        peers.append(self)
        self._port_stacks = peers

    def _resolve_hooks(self, env: Environment) -> None:
        self._obs = env.obs
        self._fault_plane = env.fault_plane

    # -- endpoint API --------------------------------------------------------
    def listen(self, port: int) -> Store:
        """Accept queue for *port*: get() yields established links."""
        if port in self._listeners:
            raise ValueError(f"ttp port {port} already listening")
        queue = Store(self.env, name=f"{self.name}:{port}.accept")
        self._listeners[port] = queue
        return queue

    def open(
        self, dest_host: str, dest_port: int, src_port: int
    ) -> Generator[Event, None, TTPLink]:
        """Process: 3-way tagged open; returns the OPEN link."""
        key = (dest_host, dest_port, src_port)
        if key in self._links:
            raise TTPError("link already exists")
        link = self._make_link(
            src_port, dest_host, dest_port, tag=next(_tag_ids), initiator=True
        )
        link.state = "open-sent"
        self._links[key] = link
        open_pkt = TTPPacket(
            kind="open",
            src_host=self.eth_port.name,
            src_port=src_port,
            dst_port=dest_port,
            tag=link.tag,
            credit=self.credits,
        )
        open_wait_us = self.retx_us
        for _attempt in range(8):
            yield from self._transmit(open_pkt, dest_host)
            result = yield link._opened | self.env.timeout(open_wait_us)
            open_wait_us = min(open_wait_us * 2.0, self.retx_max_us)
            if link._opened in result:
                if link._open_nack_reason is not None:
                    del self._links[key]
                    raise TTPError(
                        f"open to {dest_host}:{dest_port} refused: "
                        f"{link._open_nack_reason}"
                    )
                link.state = "open"
                link._sender_proc = self.env.process(
                    link._sender(), name=f"{self.name}:{src_port}.sender"
                )
                return link
        del self._links[key]
        raise TTPError(f"open to {dest_host}:{dest_port} timed out")

    # -- internals -----------------------------------------------------------
    def _make_link(
        self,
        local_port: int,
        peer_host: str,
        peer_port: int,
        tag: int,
        initiator: bool,
    ) -> TTPLink:
        return TTPLink(
            self, local_port, peer_host, peer_port,
            tag=tag, initiator=initiator,
            mtu=self.mtu, window=self.window, credits=self.credits,
            seq_mod=self.seq_mod, retx_us=self.retx_us,
            retx_max_us=self.retx_max_us, max_retries=self.max_retries,
            jitter_frac=self.jitter_frac, rng=self.rng,
        )

    def _count(self, metric: str, n: int = 1) -> None:
        obs = self._obs
        if obs is not None:
            obs.count(metric, n, stack=self.name)

    def _transmit(self, pkt: TTPPacket, dest_host: str) -> Generator[Event, None, None]:
        obs = self._obs
        sp = (
            obs.begin(
                "stack",
                track=f"net:{self.eth_port.name}",
                proto="ttp",
                bytes=pkt.payload_bytes,
            )
            if obs is not None
            else None
        )
        yield self.env.timeout(self.stack.cost_us(pkt.payload_bytes or 1))
        if obs is not None:
            obs.end(sp)
            obs.count("ttp.packets_sent", stack=self.name)
        # The I2O drop/dup oracle (msg-drop/msg-dup windows keyed by the
        # stack name): a dropped packet pays its cost and vanishes before
        # the wire; the reliability machinery recovers it.
        plane = self._fault_plane
        if plane is not None and plane.message_dropped(self.name):
            self.packets_dropped_by_fault += 1
            self._count("ttp.packets_dropped_by_fault")
            return
        frame = NetFrame(
            payload_bytes=pkt.payload_bytes + TTP_HEADER_BYTES,
            stream_id=f"ttp:{pkt.dst_port}",
            seqno=pkt.seq,
            meta=pkt,
        )
        yield from self.eth_port.send(frame, dest_host)
        if plane is not None and plane.message_duplicated(self.name):
            self.packets_duplicated_by_fault += 1
            self._count("ttp.packets_duplicated_by_fault")
            dup = NetFrame(
                payload_bytes=pkt.payload_bytes + TTP_HEADER_BYTES,
                stream_id=f"ttp:{pkt.dst_port}",
                seqno=pkt.seq,
                meta=pkt,
            )
            yield from self.eth_port.send(dup, dest_host)

    def _demux(self) -> Generator:
        while True:
            frame: NetFrame = yield self.eth_port.receive()
            pkt = frame.meta
            if not isinstance(pkt, TTPPacket):
                continue
            yield self.env.timeout(self.stack.cost_us(pkt.payload_bytes or 1))
            self._deliver(pkt)

    def _deliver(self, pkt: TTPPacket) -> None:
        """Route one packet to the owning stack on this port."""
        key = (pkt.src_host, pkt.src_port, pkt.dst_port)
        stacks = self._port_stacks
        owner: Optional["TTPStack"] = None
        link: Optional[TTPLink] = None
        for stack in stacks:
            link = stack._links.get(key)
            if link is not None:
                owner = stack
                break
        if pkt.kind == "open":
            if owner is None:
                for stack in stacks:
                    if pkt.dst_port in stack._listeners:
                        owner = stack
                        break
                if owner is None:
                    # nobody listening anywhere on the port: refuse loudly
                    self.open_nacks_sent += 1
                    self.env.process(
                        self._transmit(
                            TTPPacket(
                                kind="open-nack",
                                src_host=self.eth_port.name,
                                src_port=pkt.dst_port,
                                dst_port=pkt.src_port,
                                tag=pkt.tag,
                                reason=f"no listener on port {pkt.dst_port}",
                            ),
                            pkt.src_host,
                        ),
                        name=f"{self.name}.open-nack",
                    )
                    return
            owner._handle_open(pkt, key)
            return
        if link is None or owner is None:
            return  # stray packet for an unknown link
        if pkt.kind == "open-ack":
            if link.state == "open-sent" or not link._opened.triggered:
                link._peer_credit = pkt.credit
                if not link._opened.triggered:
                    link._opened.succeed()
            return
        if pkt.kind == "open-nack":
            link._open_nack_reason = pkt.reason or "refused"
            if not link._opened.triggered:
                link._opened.succeed()
            return
        if link.state == "open-recv":
            # 3-way completion: the first in-tag packet from the initiator
            # proves our OPEN-ACK arrived
            if pkt.tag == link.tag:
                link.state = "open"
        link._on_packet(pkt)

    def _handle_open(self, pkt: TTPPacket, key: tuple[str, int, int]) -> None:
        link = self._links.get(key)
        if link is not None:
            if pkt.tag == link.tag and link._open_ack is not None:
                # duplicate OPEN (lost OPEN-ACK): replay the cached OPEN-ACK
                self.open_ack_replays += 1
                self._count("ttp.open_ack_replays")
                link._reply(link._open_ack)
            return
        accept = self._listeners.get(pkt.dst_port)
        if accept is None:
            return  # raced away; the initiator retries into the NACK path
        link = self._make_link(
            pkt.dst_port, pkt.src_host, pkt.src_port, tag=pkt.tag, initiator=False
        )
        link.state = "open-recv"
        link._peer_credit = pkt.credit
        link._sender_proc = self.env.process(
            link._sender(), name=f"{self.name}:{pkt.dst_port}.sender"
        )
        self._links[key] = link
        accept.put_nowait(link)
        link._open_ack = TTPPacket(
            kind="open-ack",
            src_host=self.eth_port.name,
            src_port=pkt.dst_port,
            dst_port=pkt.src_port,
            tag=pkt.tag,
            credit=self.credits,
        )
        link._reply(link._open_ack)
