"""Transport selection for the media wire path: udp | tcp | ttp.

The paper's services push raw frames onto the switch (the modeled
equivalent of the I2O boards' resident UDP). This module makes the wire
path *pluggable*: ``transport="udp"`` keeps the historical raw path
byte-for-byte (no object here is even constructed), while ``"tcp"`` and
``"ttp"`` ride the real reliable stacks of :mod:`repro.net.tcp` /
:mod:`repro.net.ttp` between the serving port and each client.

Three pieces:

* :func:`resolve_transport` — the CLI/name funnel, failing with the valid
  set spelled out (the same contract as
  :func:`repro.faults.resolve_scenario`).
* :class:`MediaWireSender` — the server side of one NIC/card: lazily opens
  one connection/link per client destination and sends each frame
  descriptor as one application record, tagged with a globally unique wire
  id.
* :class:`MediaClientEndpoint` — the client side: accepts links on the
  media port and delivers every completed record into the
  :class:`~repro.media.player.MPEGClient`'s reception log, deduplicating
  by wire id (no double delivery, ever).

Both register with a shared :class:`MediaTransportBooks`, the zero-leak
ledger: every record id ever sent must be delivered, declared lost by an
abort, or still in flight inside some endpoint's window —
:meth:`MediaTransportBooks.unaccounted` returns whatever fell through,
and the chaos suite asserts it is empty.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from repro.hw.ethernet import CLIENT_STACK, EthernetPort, NetFrame, StackCosts

from .tcp import TCPError, TCPStack
from .ttp import TTPError, TTPLink, TTPStack

__all__ = [
    "MEDIA_PORT",
    "VALID_TRANSPORTS",
    "resolve_transport",
    "MediaTransportBooks",
    "MediaWireSender",
    "MediaClientEndpoint",
]

#: the well-known port media links rendezvous on (RTP's default)
MEDIA_PORT = 5004

#: the transports the server stack accepts
VALID_TRANSPORTS = ("udp", "tcp", "ttp")

#: globally unique record ids for the zero-leak ledger
_wire_ids = itertools.count(1)

#: the failures a reliable transport surfaces to its caller
_TRANSPORT_ERRORS = (TCPError, TTPError)


def resolve_transport(name: str) -> str:
    """Validate a transport name, failing with the valid set spelled out."""
    if name not in VALID_TRANSPORTS:
        valid = ", ".join(sorted(VALID_TRANSPORTS))
        raise ValueError(f"unknown transport {name!r}; valid transports: {valid}")
    return name


def _endpoint_inflight(ep) -> set:
    """Record ids an endpoint (TCPConnection or TTPLink) still holds."""
    if isinstance(ep, TTPLink):
        return ep.inflight_record_ids()
    ids = {rec.record_id for rec in ep._pending}
    ids.update(seg.record_id for seg in ep._segments.values())
    ids.update(ep._assembling)
    ids.update(seg.record_id for seg in ep._out_of_order.values())
    ids.update(item["record_id"] for item in ep.inbox.items)
    return ids


class MediaTransportBooks:
    """The shared zero-leak ledger across every sender and endpoint."""

    def __init__(self) -> None:
        self.sent_ids: set[int] = set()
        self.delivered_ids: set[int] = set()
        self.lost_ids: set[int] = set()
        self.duplicate_deliveries = 0
        self.senders: list["MediaWireSender"] = []
        self.endpoints: list["MediaClientEndpoint"] = []

    def inflight_ids(self) -> set:
        ids: set = set()
        for sender in self.senders:
            for ep in sender.endpoints():
                ids |= _endpoint_inflight(ep)
        for endpoint in self.endpoints:
            for ep in endpoint.links:
                ids |= _endpoint_inflight(ep)
        return ids

    def unaccounted(self) -> set:
        """Sent record ids that are neither delivered, lost, nor in flight.

        The invariant the chaos suite audits: this is EMPTY at any instant
        — a frame handed to a reliable transport is always somewhere."""
        return self.sent_ids - self.delivered_ids - self.lost_ids - self.inflight_ids()

    @property
    def retransmissions(self) -> int:
        return sum(
            ep.retransmissions
            for sender in self.senders
            for ep in sender.endpoints()
        )

    def __repr__(self) -> str:
        return (
            f"<MediaTransportBooks sent={len(self.sent_ids)} "
            f"delivered={len(self.delivered_ids)} lost={len(self.lost_ids)} "
            f"dups={self.duplicate_deliveries}>"
        )


class MediaWireSender:
    """The server side of one NIC/card's reliable media wire path."""

    def __init__(
        self,
        env,
        eth_port: EthernetPort,
        transport: str,
        stack_costs: StackCosts,
        books: MediaTransportBooks,
        name: Optional[str] = None,
    ) -> None:
        self.env = env
        self.transport = resolve_transport(transport)
        if self.transport == "udp":
            raise ValueError("the raw UDP path does not use a wire sender")
        self.books = books
        self.name = name or f"wire:{eth_port.name}"
        if self.transport == "tcp":
            self.stack = TCPStack(
                env, eth_port, stack_costs, name=f"tcp:{self.name}"
            )
        else:
            self.stack = TTPStack(
                env, eth_port, stack_costs, name=f"ttp:{self.name}"
            )
        #: destination client name -> live connection/link
        self._links: dict[str, Any] = {}
        self.open_failures = 0
        self.frames_unsent = 0
        books.senders.append(self)

    def endpoints(self) -> list:
        return list(self._links.values())

    def _dead(self, ep) -> bool:
        return getattr(ep, "aborted", False) or ep.state in ("reset", "closed")

    def _reap(self, dest: str, ep) -> None:
        """Collect a dead link's lost-record account and retire it."""
        if isinstance(ep, TTPLink):
            self.books.lost_ids.update(ep.lost_record_ids)
        else:
            self.books.lost_ids.update(getattr(ep, "lost_record_ids", ()))
        # whatever was still buffered on either side of a dead link is gone
        self.books.lost_ids.update(_endpoint_inflight(ep) & self.books.sent_ids)
        if self._links.get(dest) is ep:
            del self._links[dest]

    def _open(self, dest: str) -> Generator:
        if self.transport == "tcp":
            conn = yield from self.stack.connect(dest, MEDIA_PORT, src_port=MEDIA_PORT)
            return conn
        link = yield from self.stack.open(dest, MEDIA_PORT, src_port=MEDIA_PORT)
        return link

    def send_media(self, desc, dest: str) -> Generator:
        """Process: one frame descriptor as one reliable record to *dest*.

        The first frame per destination pays the open handshake; a dead
        link (aborted after max retries) is reaped — its records move to
        the lost account — and reopened on the next frame."""
        ep = self._links.get(dest)
        if ep is not None and self._dead(ep):
            self._reap(dest, ep)
            ep = None
        if ep is None:
            try:
                ep = yield from self._open(dest)
            except _TRANSPORT_ERRORS:
                self.open_failures += 1
                self.frames_unsent += 1
                return
            self._links[dest] = ep
        wire_id = next(_wire_ids)
        try:
            ep.send(
                desc.size_bytes,
                data=(desc.stream_id, desc.frame.seqno),
                record_id=wire_id,
            )
        except _TRANSPORT_ERRORS:
            self.frames_unsent += 1
            if self._dead(ep):
                self._reap(dest, ep)
            return
        self.books.sent_ids.add(wire_id)

    def __repr__(self) -> str:
        return f"<MediaWireSender {self.name!r} {self.transport} links={len(self._links)}>"


class MediaClientEndpoint:
    """The client side: accept media links, deliver records to the player."""

    def __init__(
        self,
        env,
        client,
        transport: str,
        books: MediaTransportBooks,
        stack_costs: StackCosts = CLIENT_STACK,
        port: int = MEDIA_PORT,
    ) -> None:
        self.env = env
        self.client = client
        self.transport = resolve_transport(transport)
        if self.transport == "udp":
            raise ValueError("the raw UDP path does not use a client endpoint")
        self.books = books
        if self.transport == "tcp":
            self.stack = TCPStack(
                env, client.port, stack_costs, name=f"tcp:{client.name}"
            )
        else:
            self.stack = TTPStack(
                env, client.port, stack_costs, name=f"ttp:{client.name}"
            )
        self.accept = self.stack.listen(port)
        self.links: list = []
        env.process(self._acceptor(), name=f"media-ep:{client.name}")
        books.endpoints.append(self)

    def _acceptor(self) -> Generator:
        while True:
            link = yield self.accept.get()
            self.links.append(link)
            self.env.process(
                self._reader(link), name=f"media-ep:{self.client.name}.reader"
            )

    def _reader(self, link) -> Generator:
        while True:
            rec = yield link.recv()
            rid = rec["record_id"]
            if rid in self.books.delivered_ids:
                # the transport already deduplicates; this guards the
                # at-most-once ledger against any future transport that
                # doesn't
                self.books.duplicate_deliveries += 1
                continue
            self.books.delivered_ids.add(rid)
            stream_id, seqno = rec["data"]
            # receive-side stack cost was charged per packet by the
            # transport demux; delivery itself is free
            self.client.deliver(
                NetFrame(
                    payload_bytes=rec["nbytes"],
                    stream_id=stream_id,
                    seqno=seqno,
                )
            )

    def __repr__(self) -> str:
        return (
            f"<MediaClientEndpoint {self.client.name!r} {self.transport} "
            f"links={len(self.links)}>"
        )
