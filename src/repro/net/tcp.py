"""A small TCP over the simulated Ethernet (go-back-N flavour).

The I2O consortium's marquee use case — "off-loading TCP/IP protocol
processing to the NI from the host" — needs an actual reliable transport on
the board. This is a deliberately small but *real* TCP: three-way
handshake, MSS segmentation, a fixed sliding window of outstanding
segments, cumulative ACKs, retransmission timeout with go-back-N recovery,
in-order reassembly, and FIN teardown. It survives the switch's loss model
(`EthernetSwitch(loss_rate=...)`), which is the point.

Retransmission is hardened against *sustained* loss (fault-plane bursts,
partitions): the RTO backs off exponentially (optionally jittered by a
seeded RNG) up to ``rto_max_us`` instead of retransmitting at a fixed
interval forever, resets on ACK progress, and a connection that exhausts
``max_retries`` consecutive timeouts aborts into the ``"reset"`` state
rather than spinning. Attach a :class:`~repro.sim.Tracer` to observe the
backoff ('tcp'/'rto' events carry the expired interval per timeout).

Sequence numbers count *segments* (not bytes) — a simplification that
keeps the protocol honest (loss, reordering, duplication all handled)
while keeping reassembly bookkeeping readable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.hw.ethernet import EthernetPort, NetFrame, StackCosts
from repro.sim import Environment, Event, Store

__all__ = ["Segment", "TCPStack", "TCPConnection", "TCPError"]

#: TCP/IP header per segment on the wire
TCP_HEADER_BYTES = 40

_conn_ids = itertools.count(1)


class TCPError(RuntimeError):
    """Connection-level failure (timeout during handshake, reset, ...)."""


@dataclass
class Segment:
    """One TCP segment in flight."""

    kind: str  # 'syn' | 'synack' | 'ack' | 'data' | 'fin' | 'finack'
    src_host: str
    src_port: int
    dst_port: int
    seq: int = 0
    #: cumulative: next segment index expected by the sender of this ACK
    ack: int = 0
    payload_bytes: int = 0
    #: application record this segment belongs to (delivered on completion)
    record_id: int = 0
    #: total segments in the record (for reassembly bookkeeping)
    record_segments: int = 1
    data: Any = None
    #: set by the sender loop on first wire transmission, so a window
    #: refill pass never re-sends a segment an earlier pass already put
    #: on the wire (retransmits go through the explicit go-back-N path)
    sent_once: bool = False


@dataclass
class _Record:
    """A queued application send: one message split into segments."""

    record_id: int
    nbytes: int
    data: Any
    first_seq: int
    n_segments: int


class TCPConnection:
    """One established (or establishing) connection endpoint."""

    def __init__(
        self,
        stack: "TCPStack",
        local_port: int,
        peer_host: str,
        peer_port: int,
        mss: int,
        window: int,
        rto_us: float,
        rto_max_us: Optional[float] = None,
        max_retries: int = 12,
        jitter_frac: float = 0.0,
        rng=None,
    ) -> None:
        self.stack = stack
        self.env = stack.env
        self.local_port = local_port
        self.peer_host = peer_host
        self.peer_port = peer_port
        self.mss = mss
        self.window = window
        self.rto_us = rto_us
        self.rto_max_us = rto_max_us if rto_max_us is not None else 16.0 * rto_us
        self.max_retries = max_retries
        self.jitter_frac = jitter_frac
        self._rng = rng
        self._rto_cur = rto_us  # current backed-off RTO
        self._consecutive_rtos = 0
        self.aborted = False
        self.state = "closed"
        # -- sender side ----------------------------------------------------
        self._next_seq = 0  # next new segment index to assign
        self._send_base = 0  # oldest unacked segment index
        self._segments: dict[int, Segment] = {}  # unacked, by seq
        self._pending: list[_Record] = []  # records not yet fully segmented
        self._send_signal: Optional[Event] = None
        self._sender_proc = None
        # -- receiver side -----------------------------------------------------
        self._rcv_next = 0  # next in-order segment index expected
        self._out_of_order: dict[int, Segment] = {}
        self._assembling: dict[int, list[Segment]] = {}
        #: in-order application records (Datagram-like) for the app
        self.inbox: Store = Store(self.env, name=f"tcp:{local_port}.inbox")
        # -- stats ------------------------------------------------------------
        self.retransmissions = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.duplicates_dropped = 0
        #: record ids the abort path declared undeliverable
        self.lost_record_ids: list[int] = []
        self._established = self.env.event(name=f"tcp:{local_port}.established")
        self._closed = self.env.event(name=f"tcp:{local_port}.closed")

    # -- application API ---------------------------------------------------------
    def send(self, nbytes: int, data: Any = None, record_id: Optional[int] = None) -> None:
        """Queue an application record for reliable delivery.

        ``record_id`` lets the caller tag the record with its own globally
        unique id (the transport-selection ledger does); by default one is
        drawn from the module counter as before."""
        if self.state not in ("established",):
            raise TCPError(f"send on {self.state} connection")
        if nbytes <= 0:
            raise ValueError("record size must be positive")
        n_segments = max(1, -(-nbytes // self.mss))
        record = _Record(
            record_id=record_id if record_id is not None else next(_conn_ids),
            nbytes=nbytes,
            data=data,
            first_seq=-1,  # assigned when segmented
            n_segments=n_segments,
        )
        self._pending.append(record)
        self._kick_sender()

    def recv(self) -> Event:
        """Event: the next complete in-order application record."""
        return self.inbox.get()

    def close(self) -> Generator[Event, None, None]:
        """Process: flush, send FIN, await FINACK."""
        while self._pending or self._segments:
            yield self.env.timeout(self.rto_us / 4)
        self.state = "fin-wait"
        fin = Segment(
            kind="fin",
            src_host=self.stack.eth_port.name,
            src_port=self.local_port,
            dst_port=self.peer_port,
            seq=self._next_seq,
        )
        for _attempt in range(8):
            yield from self.stack._transmit(fin, self.peer_host)
            result = yield self._closed | self.env.timeout(self.rto_us)
            if self._closed in result:
                self.state = "closed"
                return
        raise TCPError("close timed out")

    # -- sender machinery ----------------------------------------------------------
    def _kick_sender(self) -> None:
        if self._send_signal is not None and not self._send_signal.triggered:
            self._send_signal.succeed()

    def _sender(self) -> Generator:
        env = self.env
        while True:
            # segment pending records while window space remains
            progressed = self._fill_window()
            if progressed:
                # snapshot: ACKs may pop segments while we yield mid-send
                for seq in sorted(self._segments):
                    seg = self._segments.get(seq)
                    if seg is None:
                        continue
                    if not seg.sent_once:
                        seg.sent_once = True
                        self.segments_sent += 1
                        yield from self.stack._transmit(seg, self.peer_host)
            if not self._segments and not self._pending:
                # idle: wait for new sends
                self._send_signal = env.event()
                yield self._send_signal
                self._send_signal = None
                continue
            # await ACK progress or retransmission timeout
            base_before = self._send_base
            wait_us = self._rto_interval()
            timeout_ev = env.timeout(wait_us)
            self._send_signal = env.event()
            result = yield self._send_signal | timeout_ev
            self._send_signal = None
            if (
                timeout_ev in result
                and self._send_base == base_before
                and self._segments
            ):
                # RTO: go-back-N — resend every outstanding segment
                # (snapshot again: ACKs may land between retransmissions)
                self._consecutive_rtos += 1
                self._trace(
                    "rto",
                    rto_us=wait_us,
                    attempt=self._consecutive_rtos,
                    outstanding=len(self._segments),
                )
                if self._consecutive_rtos > self.max_retries:
                    self._abort()
                    return
                outstanding = sorted(self._segments)
                self.retransmissions += len(outstanding)
                obs = self.stack._obs
                if obs is not None:
                    obs.count(
                        "tcp.retransmissions",
                        len(outstanding),
                        stack=self.stack.name,
                    )
                for seq in outstanding:
                    seg = self._segments.get(seq)
                    if seg is None:
                        continue
                    self.segments_sent += 1
                    yield from self.stack._transmit(seg, self.peer_host)
                self._rto_cur = min(self._rto_cur * 2.0, self.rto_max_us)

    def _rto_interval(self) -> float:
        """The next retransmission wait: backed-off RTO plus optional jitter.

        Jitter desynchronises connections that timed out together (a loss
        burst hits every stream at once; without jitter they all retransmit
        in lock-step into the same congested window).
        """
        rto = self._rto_cur
        if self._rng is not None and self.jitter_frac > 0.0:
            rto *= 1.0 + self.jitter_frac * float(self._rng.random())
        return rto

    def _abort(self) -> None:
        """Give up after max_retries consecutive RTOs: the peer is gone."""
        self.aborted = True
        self.state = "reset"
        lost = {rec.record_id for rec in self._pending}
        lost.update(seg.record_id for seg in self._segments.values())
        self.lost_record_ids.extend(sorted(lost))
        self._trace("abort", retries=self._consecutive_rtos)
        self._segments.clear()
        self._pending.clear()

    def _trace(self, name: str, **fields: Any) -> None:
        tracer = self.stack.tracer
        if tracer is None:
            # no explicit tracer wired: ride the observability plane's
            obs = self.stack._obs
            tracer = obs.tracer if obs is not None else None
        if tracer is not None and tracer.wants("tcp"):
            tracer.emit("tcp", name, port=self.local_port, **fields)

    def _fill_window(self) -> bool:
        progressed = False
        while self._pending and len(self._segments) < self.window:
            record = self._pending[0]
            if record.first_seq < 0:
                record.first_seq = self._next_seq
            # emit the next segment of this record
            emitted = self._next_seq - record.first_seq
            if emitted >= record.n_segments:
                self._pending.pop(0)
                continue
            is_last = emitted == record.n_segments - 1
            size = (
                record.nbytes - self.mss * (record.n_segments - 1)
                if is_last
                else self.mss
            )
            seg = Segment(
                kind="data",
                src_host=self.stack.eth_port.name,
                src_port=self.local_port,
                dst_port=self.peer_port,
                seq=self._next_seq,
                payload_bytes=max(1, size),
                record_id=record.record_id,
                record_segments=record.n_segments,
                data=record.data if is_last else None,
            )
            self._segments[self._next_seq] = seg
            self._next_seq += 1
            progressed = True
            if is_last:
                self._pending.pop(0)
        return progressed

    # -- segment arrival (called by the stack's demux) ------------------------------
    def _on_segment(self, seg: Segment) -> None:
        self.segments_received += 1
        if seg.kind == "ack":
            if seg.ack > self._send_base:
                for s in range(self._send_base, seg.ack):
                    self._segments.pop(s, None)
                self._send_base = seg.ack
                # forward progress: the path works again, undo the backoff
                self._rto_cur = self.rto_us
                self._consecutive_rtos = 0
                self._kick_sender()
            return
        if seg.kind == "data":
            if seg.seq < self._rcv_next or seg.seq in self._out_of_order:
                self.duplicates_dropped += 1
            elif seg.seq < self._rcv_next + 4 * self.window:
                self._out_of_order[seg.seq] = seg
                self._drain_in_order()
            self._send_ack()
            return
        if seg.kind == "fin":
            self.state = "closed"
            self._reply(Segment(
                kind="finack",
                src_host=self.stack.eth_port.name,
                src_port=self.local_port,
                dst_port=self.peer_port,
            ))
            if not self._closed.triggered:
                self._closed.succeed()
            return
        if seg.kind == "finack":
            if not self._closed.triggered:
                self._closed.succeed()

    def _drain_in_order(self) -> None:
        while self._rcv_next in self._out_of_order:
            seg = self._out_of_order.pop(self._rcv_next)
            self._rcv_next += 1
            parts = self._assembling.setdefault(seg.record_id, [])
            parts.append(seg)
            if len(parts) == seg.record_segments:
                del self._assembling[seg.record_id]
                self.inbox.put_nowait(
                    {
                        "nbytes": sum(p.payload_bytes for p in parts),
                        "data": parts[-1].data,
                        "record_id": seg.record_id,
                    }
                )

    def _send_ack(self) -> None:
        self._reply(Segment(
            kind="ack",
            src_host=self.stack.eth_port.name,
            src_port=self.local_port,
            dst_port=self.peer_port,
            ack=self._rcv_next,
        ))

    def _reply(self, seg: Segment) -> None:
        self.env.process(
            self.stack._transmit(seg, self.peer_host),
            name=f"tcp:{self.local_port}.reply",
        )

    def __repr__(self) -> str:
        return (
            f"<TCPConnection {self.local_port}->{self.peer_host}:{self.peer_port} "
            f"{self.state} unacked={len(self._segments)} rtx={self.retransmissions}>"
        )


class TCPStack:
    """TCP endpoints multiplexed over one Ethernet attachment."""

    def __init__(
        self,
        env: Environment,
        eth_port: EthernetPort,
        stack: StackCosts,
        mss: int = 1460,
        window: int = 8,
        rto_us: float = 200_000.0,
        rto_max_us: Optional[float] = None,
        max_retries: int = 12,
        jitter_frac: float = 0.0,
        rng=None,
        tracer=None,
        name: Optional[str] = None,
    ) -> None:
        if mss < 1 or window < 1 or rto_us <= 0:
            raise ValueError("mss, window, rto must be positive")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self.env = env
        self.eth_port = eth_port
        self.stack = stack
        self.mss = mss
        self.window = window
        self.rto_us = rto_us
        self.rto_max_us = rto_max_us if rto_max_us is not None else 16.0 * rto_us
        self.max_retries = max_retries
        self.jitter_frac = jitter_frac
        self.rng = rng
        self.tracer = tracer
        self.name = name or f"tcp:{eth_port.name}"
        self._listeners: dict[int, Store] = {}
        self._connections: dict[tuple[str, int, int], TCPConnection] = {}
        # Pre-resolved obs hook slot: one instance-attribute load per
        # segment instead of chasing env.obs on every transmit. The plane
        # may install after construction, so a watcher re-resolves it.
        self._obs = env.obs
        env.add_hook_watcher(self._resolve_hooks)
        # Stacks sharing one port share ONE demux: with two independent
        # receive loops on the same port, frames are stolen round-robin by
        # whichever loop's get is queued first, and a segment can land on a
        # stack that has no matching connection (silently eaten — the peer
        # only recovers via RTO). The first stack on the port runs the
        # demux; it routes each segment across every registered stack. The
        # shared list object is cached on every member, so delivery walks
        # an instance attribute rather than getattr-ing the port per
        # segment.
        peers = getattr(eth_port, "_tcp_stacks", None)
        if peers is None:
            peers = []
            eth_port._tcp_stacks = peers  # type: ignore[attr-defined]
            env.process(self._demux(), name=f"{self.name}.demux")
        peers.append(self)
        self._port_stacks = peers

    def _resolve_hooks(self, env: Environment) -> None:
        self._obs = env.obs

    # -- endpoint API ------------------------------------------------------------
    def listen(self, port: int) -> Store:
        """Accept queue for *port*: get() yields established connections."""
        if port in self._listeners:
            raise ValueError(f"tcp port {port} already listening")
        queue = Store(self.env, name=f"{self.name}:{port}.accept")
        self._listeners[port] = queue
        return queue

    def connect(
        self, dest_host: str, dest_port: int, src_port: int
    ) -> Generator[Event, None, TCPConnection]:
        """Process: active open; returns the established connection."""
        key = (dest_host, dest_port, src_port)
        if key in self._connections:
            raise TCPError("connection already exists")
        conn = self._make_connection(src_port, dest_host, dest_port)
        conn.state = "syn-sent"
        self._connections[key] = conn
        syn = Segment(
            kind="syn",
            src_host=self.eth_port.name,
            src_port=src_port,
            dst_port=dest_port,
        )
        syn_wait_us = self.rto_us
        for _attempt in range(8):
            yield from self._transmit(syn, dest_host)
            result = yield conn._established | self.env.timeout(syn_wait_us)
            syn_wait_us = min(syn_wait_us * 2.0, self.rto_max_us)
            if conn._established in result:
                conn.state = "established"
                conn._sender_proc = self.env.process(
                    conn._sender(), name=f"{self.name}:{src_port}.sender"
                )
                return conn
        del self._connections[key]
        raise TCPError(f"connect to {dest_host}:{dest_port} timed out")

    # -- internals -------------------------------------------------------------------
    def _make_connection(
        self, local_port: int, peer_host: str, peer_port: int
    ) -> TCPConnection:
        return TCPConnection(
            self, local_port, peer_host, peer_port,
            mss=self.mss, window=self.window, rto_us=self.rto_us,
            rto_max_us=self.rto_max_us, max_retries=self.max_retries,
            jitter_frac=self.jitter_frac, rng=self.rng,
        )

    def _transmit(self, seg: Segment, dest_host: str) -> Generator[Event, None, None]:
        obs = self._obs
        sp = (
            obs.begin(
                "stack",
                track=f"net:{self.eth_port.name}",
                proto="tcp",
                bytes=seg.payload_bytes,
            )
            if obs is not None
            else None
        )
        yield self.env.timeout(self.stack.cost_us(seg.payload_bytes or 1))
        if obs is not None:
            obs.end(sp)
            obs.count("tcp.segments_sent", stack=self.name)
        frame = NetFrame(
            payload_bytes=seg.payload_bytes + TCP_HEADER_BYTES,
            stream_id=f"tcp:{seg.dst_port}",
            seqno=seg.seq,
            meta=seg,
        )
        yield from self.eth_port.send(frame, dest_host)

    def _demux(self) -> Generator:
        while True:
            frame: NetFrame = yield self.eth_port.receive()
            seg = frame.meta
            if not isinstance(seg, Segment):
                continue
            yield self.env.timeout(self.stack.cost_us(seg.payload_bytes or 1))
            self._deliver(seg)

    def _deliver(self, seg: Segment) -> None:
        """Route one segment to the owning stack on this port."""
        key = (seg.src_host, seg.src_port, seg.dst_port)
        stacks = self._port_stacks
        owner: Optional["TCPStack"] = None
        conn: Optional[TCPConnection] = None
        for stack in stacks:
            conn = stack._connections.get(key)
            if conn is not None:
                owner = stack
                break
        if seg.kind == "syn":
            if owner is None:
                for stack in stacks:
                    if seg.dst_port in stack._listeners:
                        owner = stack
                        break
                if owner is None:
                    return  # no listener anywhere on the port: SYN dropped
            owner._handle_syn(seg, key)
            return
        if conn is None or owner is None:
            return  # stray segment for an unknown connection
        if seg.kind == "synack":
            if not conn._established.triggered:
                conn._established.succeed()
            return
        conn._on_segment(seg)

    def _handle_syn(self, seg: Segment, key: tuple[str, int, int]) -> None:
        conn = self._connections.get(key)
        accept = self._listeners.get(seg.dst_port)
        if conn is None:
            if accept is None:
                return  # no listener: SYN silently dropped
            conn = self._make_connection(seg.dst_port, seg.src_host, seg.src_port)
            conn.state = "established"
            conn._sender_proc = self.env.process(
                conn._sender(), name=f"{self.name}:{seg.dst_port}.sender"
            )
            self._connections[key] = conn
            accept.put_nowait(conn)
        # (re)confirm — SYNACK retransmit-safe
        self.env.process(
            self._transmit(
                Segment(
                    kind="synack",
                    src_host=self.eth_port.name,
                    src_port=seg.dst_port,
                    dst_port=seg.src_port,
                ),
                seg.src_host,
            )
        )
