"""Board-resident transport protocols over the simulated Ethernet.

"Host-to-host communications are supported by I2O board-resident protocols
(like TCP and UDP)": :class:`UDPStack` for the media datagrams,
:class:`TCPStack` (go-back-N sliding window, cumulative ACKs, RTO) for
reliable control/cluster traffic, and :class:`TTPStack` — a TTPoE-style
reliable L2 transport (tagged 3-way open, NACK-driven go-back-N,
NOC-style credit flow control; see ``docs/ttp-spec.md``) — all charging
their endpoint's protocol-stack CPU cost per packet and all living with
the switch's loss model.

:mod:`repro.net.transport` selects between them for the media wire path
(``transport={udp,tcp,ttp}``) and keeps the zero-leak delivery ledger.
"""

from .tcp import Segment, TCPConnection, TCPError, TCPStack
from .transport import (
    MEDIA_PORT,
    VALID_TRANSPORTS,
    MediaClientEndpoint,
    MediaTransportBooks,
    MediaWireSender,
    resolve_transport,
)
from .ttp import TTP_HEADER_BYTES, TTPError, TTPLink, TTPPacket, TTPStack
from .udp import Datagram, UDPStack

__all__ = [
    "UDPStack",
    "Datagram",
    "TCPStack",
    "TCPConnection",
    "TCPError",
    "Segment",
    "TTPStack",
    "TTPLink",
    "TTPPacket",
    "TTPError",
    "TTP_HEADER_BYTES",
    "MEDIA_PORT",
    "VALID_TRANSPORTS",
    "MediaTransportBooks",
    "MediaWireSender",
    "MediaClientEndpoint",
    "resolve_transport",
]
