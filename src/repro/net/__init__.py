"""Board-resident transport protocols over the simulated Ethernet.

"Host-to-host communications are supported by I2O board-resident protocols
(like TCP and UDP)": :class:`UDPStack` for the media datagrams,
:class:`TCPStack` (go-back-N sliding window, cumulative ACKs, RTO) for
reliable control/cluster traffic — both charging their endpoint's
protocol-stack CPU cost per segment and both living with the switch's
loss model.
"""

from .tcp import Segment, TCPConnection, TCPError, TCPStack
from .udp import Datagram, UDPStack

__all__ = [
    "UDPStack",
    "Datagram",
    "TCPStack",
    "TCPConnection",
    "TCPError",
    "Segment",
]
