"""UDP over the simulated Ethernet.

The paper's media delivery rides an unreliable datagram protocol resident
on the I2O boards ("host-to-host communications are supported by I2O
board-resident protocols (like TCP and UDP)"). :class:`UDPStack` is one
endpoint's protocol instance: it multiplexes numbered ports over a single
Ethernet attachment, charges the endpoint's per-packet stack cost, and —
being UDP — silently loses whatever the network loses.

The send path consults the environment's fault plane (``udp-drop`` /
``udp-dup`` windows keyed by the stack name): a dropped datagram pays its
stack cost and then vanishes before reaching the wire, a duplicated one is
framed and transmitted twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.hw.ethernet import EthernetPort, NetFrame, StackCosts
from repro.sim import Environment, Event, Store

__all__ = ["Datagram", "UDPStack"]


@dataclass
class Datagram:
    """One UDP payload as delivered to the application."""

    src_host: str
    src_port: int
    dst_port: int
    payload_bytes: int
    data: Any = None
    #: sender timestamp, µs (for latency accounting)
    sent_at: float = 0.0

#: UDP header on the wire
UDP_HEADER_BYTES = 8


class UDPStack:
    """Datagram sockets over one Ethernet attachment."""

    def __init__(
        self,
        env: Environment,
        eth_port: EthernetPort,
        stack: StackCosts,
        name: Optional[str] = None,
    ) -> None:
        self.env = env
        self.eth_port = eth_port
        self.stack = stack
        self.name = name or f"udp:{eth_port.name}"
        self._sockets: dict[int, Store] = {}
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.no_socket_drops = 0
        self.datagrams_dropped = 0
        self.datagrams_duplicated = 0
        # Pre-resolved hook slots: one instance-attribute load per datagram
        # instead of chasing env.obs/env.fault_plane on every send. Planes
        # may install after construction (chaos wires the fault plane once
        # the stacks exist), so a watcher re-resolves the cache on bind.
        self._obs = env.obs
        self._fault_plane = env.fault_plane
        env.add_hook_watcher(self._resolve_hooks)
        env.process(self._demux(), name=f"{self.name}.demux")

    def _resolve_hooks(self, env: Environment) -> None:
        self._obs = env.obs
        self._fault_plane = env.fault_plane

    # -- socket API ----------------------------------------------------------
    def bind(self, port: int) -> Store:
        """Open a receive queue on *port*; returns the queue (get() events)."""
        if port in self._sockets:
            raise ValueError(f"udp port {port} already bound on {self.name}")
        queue = Store(self.env, name=f"{self.name}:{port}")
        self._sockets[port] = queue
        return queue

    def close(self, port: int) -> None:
        if port not in self._sockets:
            raise KeyError(f"udp port {port} not bound")
        del self._sockets[port]

    def sendto(
        self,
        payload_bytes: int,
        dest_host: str,
        dest_port: int,
        src_port: int = 0,
        data: Any = None,
    ) -> Generator[Event, None, None]:
        """Process: transmit one datagram (no delivery guarantee)."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        obs = self._obs
        sp = (
            obs.begin(
                "stack",
                track=f"net:{self.eth_port.name}",
                proto="udp",
                bytes=payload_bytes,
            )
            if obs is not None
            else None
        )
        yield self.env.timeout(self.stack.cost_us(payload_bytes))
        if obs is not None:
            obs.end(sp)
        plane = self._fault_plane
        if plane is not None and plane.datagram_dropped(self.name):
            self.datagrams_dropped += 1
            if obs is not None:
                obs.count("udp.datagrams_dropped", stack=self.name)
            return
        dgram = Datagram(
            src_host=self.eth_port.name,
            src_port=src_port,
            dst_port=dest_port,
            payload_bytes=payload_bytes,
            data=data,
            sent_at=self.env.now,
        )
        frame = NetFrame(
            payload_bytes=payload_bytes + UDP_HEADER_BYTES,
            stream_id=f"udp:{dest_port}",
            meta=dgram,
        )
        self.datagrams_sent += 1
        if obs is not None:
            obs.count("udp.datagrams_sent", stack=self.name)
        yield from self.eth_port.send(frame, dest_host)
        if plane is not None and plane.datagram_duplicated(self.name):
            self.datagrams_duplicated += 1
            dup = NetFrame(
                payload_bytes=payload_bytes + UDP_HEADER_BYTES,
                stream_id=f"udp:{dest_port}",
                meta=dgram,
            )
            yield from self.eth_port.send(dup, dest_host)

    # -- receive path ---------------------------------------------------------
    def _demux(self) -> Generator:
        while True:
            frame: NetFrame = yield self.eth_port.receive()
            meta = frame.meta
            if not isinstance(meta, Datagram):
                continue  # not UDP traffic (shared attachment)
            yield self.env.timeout(self.stack.cost_us(meta.payload_bytes))
            queue = self._sockets.get(meta.dst_port)
            if queue is None:
                self.no_socket_drops += 1
                continue
            self.datagrams_received += 1
            queue.put_nowait(meta)

    def __repr__(self) -> str:
        return (
            f"<UDPStack {self.name!r} sent={self.datagrams_sent} "
            f"rcvd={self.datagrams_received}>"
        )
