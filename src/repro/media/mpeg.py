"""Synthetic MPEG-1 elementary streams and the segmenter.

The paper sources streams by running "an MPEG segmentation program ... for
segmenting an MPEG encoded file into I, P and B frames", emulating an MPEG
player's demux stage. We have no MPEG files here (and the scheduler never
inspects pixel data), so :class:`MPEGEncoder` synthesizes a statistically
faithful elementary stream — GOP structure, per-type frame-size ratios,
target bitrate — and :func:`segment` plays the role of the segmentation
program, turning a byte extent into a list of typed frames.

Defaults follow MPEG-1 constrained-parameters practice: GOP N=12/M=3
(IBBPBBPBBPBB), 30 fps, I:P:B size ratio ≈ 5:3:1, lognormal size jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.sim import RandomStreams

from .frames import FrameType, MediaFrame

__all__ = ["GOPStructure", "MPEGEncoder", "MPEGFile", "segment"]


@dataclass(frozen=True)
class GOPStructure:
    """Group-of-pictures pattern: N frames per GOP, M-1 B-frames per anchor."""

    n: int = 12
    m: int = 3

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 1:
            raise ValueError("GOP parameters must be >= 1")
        if self.n % self.m != 0:
            raise ValueError("N must be a multiple of M for a regular GOP")

    def pattern(self) -> list[FrameType]:
        """Display-order frame types of one GOP (starts with the I frame)."""
        types: list[FrameType] = []
        for i in range(self.n):
            if i == 0:
                types.append(FrameType.I)
            elif i % self.m == 0:
                types.append(FrameType.P)
            else:
                types.append(FrameType.B)
        return types


@dataclass
class MPEGFile:
    """A synthesized MPEG-1 elementary stream 'file'."""

    name: str
    frames: list[MediaFrame]
    fps: float

    @property
    def size_bytes(self) -> int:
        return sum(f.size_bytes for f in self.frames)

    @property
    def duration_us(self) -> float:
        return len(self.frames) * 1_000_000.0 / self.fps

    @property
    def mean_bitrate_bps(self) -> float:
        return self.size_bytes * 8.0 / (self.duration_us / 1_000_000.0)

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[MediaFrame]:
        return iter(self.frames)


class MPEGEncoder:
    """Deterministic synthetic MPEG-1 encoder.

    Parameters
    ----------
    bitrate_bps:
        Target mean elementary-stream bitrate.
    fps:
        Frame rate (MPEG-1 SIF is typically 24–30).
    gop:
        GOP structure.
    size_jitter:
        Lognormal sigma applied to per-frame sizes (0 disables jitter).
    rng:
        Named random streams (one substream per file name) so the same seed
        and file name always produce the same stream.
    """

    #: relative sizes of I, P, B pictures
    TYPE_WEIGHTS = {FrameType.I: 5.0, FrameType.P: 3.0, FrameType.B: 1.0}

    def __init__(
        self,
        bitrate_bps: float = 1_500_000.0,
        fps: float = 30.0,
        gop: GOPStructure = GOPStructure(),
        size_jitter: float = 0.15,
        rng: Optional[RandomStreams] = None,
    ) -> None:
        if bitrate_bps <= 0 or fps <= 0:
            raise ValueError("bitrate and fps must be positive")
        if size_jitter < 0:
            raise ValueError("size jitter must be non-negative")
        self.bitrate_bps = bitrate_bps
        self.fps = fps
        self.gop = gop
        self.size_jitter = size_jitter
        self.rng = rng if rng is not None else RandomStreams(seed=0)

    def _base_sizes(self) -> dict[FrameType, float]:
        """Mean size per frame type meeting the target bitrate."""
        pattern = self.gop.pattern()
        bytes_per_frame = self.bitrate_bps / 8.0 / self.fps
        weight_sum = sum(self.TYPE_WEIGHTS[t] for t in pattern)
        unit = bytes_per_frame * len(pattern) / weight_sum
        return {t: unit * w for t, w in self.TYPE_WEIGHTS.items()}

    def encode(self, name: str, n_frames: int) -> MPEGFile:
        """Synthesize *n_frames* frames as stream/file *name*.

        The per-frame lognormal sizes are drawn **vectorized**: one
        ``Generator.lognormal(mean=mu_array, sigma)`` call, which loops
        the same scalar C routine (libm ``exp`` over one normal draw per
        element) the old one-draw-per-frame Python loop invoked — same
        generator-stream consumption, same float64 arithmetic, so a
        batched stream is bit-identical to the per-frame loop on every
        platform (a ``np.exp`` ufunc would not be: its SIMD kernels are
        not guaranteed to match scalar libm). Pinned by tests and the
        golden-digest oracle.
        """
        if n_frames < 1:
            raise ValueError("need at least one frame")
        gen = self.rng.stream(f"mpeg:{name}")
        base = self._base_sizes()
        pattern = self.gop.pattern()
        types = [pattern[i % len(pattern)] for i in range(n_frames)]
        if self.size_jitter > 0:
            # lognormal with the requested mean: exp(mu + s^2/2) = mean.
            # mu is computed once per frame *type* with the same scalar
            # np.log call the per-frame loop made, then fanned out.
            mu_by_type = {
                t: np.log(m) - self.size_jitter**2 / 2.0 for t, m in base.items()
            }
            mu = np.array([mu_by_type[t] for t in types], dtype=np.float64)
            sizes = gen.lognormal(mean=mu, sigma=self.size_jitter).tolist()
        else:
            sizes = [base[t] for t in types]
        frame_period_us = 1_000_000.0 / self.fps
        frames = [
            MediaFrame(
                stream_id=name,
                seqno=i,
                ftype=types[i],
                size_bytes=max(64, int(round(sizes[i]))),
                pts_us=i * frame_period_us,
            )
            for i in range(n_frames)
        ]
        return MPEGFile(name=name, frames=frames, fps=self.fps)


def segment(file: MPEGFile, types: Optional[Sequence[FrameType]] = None) -> list[MediaFrame]:
    """The 'MPEG segmentation program': split a file into typed frames.

    With *types* given, returns only frames of those types (a player that
    drops B-frames under resource pressure selects I+P, for example).
    """
    if types is None:
        return list(file.frames)
    wanted = set(types)
    return [f for f in file.frames if f.ftype in wanted]
