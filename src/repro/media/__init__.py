"""Media substrate: synthetic MPEG-1 encoding, segmentation into I/P/B
frames, frame descriptors, and the client/player model."""

from .adaptation import QualityAdapter, Rendition, quality_ladder
from .bitstream import BitstreamError, BitstreamSegmenter, serialize
from .frames import DESCRIPTOR_BYTES, FrameDescriptor, FrameType, MediaFrame
from .mpeg import GOPStructure, MPEGEncoder, MPEGFile, segment
from .player import MPEGClient, StreamReception

__all__ = [
    "FrameType",
    "MediaFrame",
    "FrameDescriptor",
    "DESCRIPTOR_BYTES",
    "GOPStructure",
    "MPEGEncoder",
    "MPEGFile",
    "segment",
    "MPEGClient",
    "StreamReception",
    "serialize",
    "BitstreamSegmenter",
    "BitstreamError",
    "QualityAdapter",
    "Rendition",
    "quality_ladder",
]
