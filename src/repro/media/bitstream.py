"""MPEG-1 elementary-stream byte serialization and parsing.

The paper's "MPEG segmentation program ... segment[s] an MPEG encoded file
into I, P and B frames". :mod:`repro.media.mpeg` synthesizes the frame
*structure*; this module gives those frames a concrete byte-level form so
the segmentation program can do its real job — scanning a byte stream for
start codes and slicing it into typed frames:

* :func:`serialize` renders an :class:`~repro.media.mpeg.MPEGFile` into a
  byte string using MPEG-video-flavoured markers: a sequence header, then
  one picture start code + picture header per frame (carrying the picture
  type and temporal reference) followed by that frame's payload bytes.
* :class:`BitstreamSegmenter` is the segmentation program: it scans bytes
  (incrementally — feed it chunks as they come off the disk) and emits
  :class:`~repro.media.frames.MediaFrame` objects.

Round-trip fidelity (serialize → segment reproduces every frame's type,
order, and size) is property-tested.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from .frames import FrameType, MediaFrame
from .mpeg import MPEGFile

__all__ = [
    "serialize",
    "BitstreamSegmenter",
    "BitstreamError",
    "SEQUENCE_START",
    "PICTURE_START",
    "SEQUENCE_END",
]

#: start codes (MPEG-1-video-flavoured: 00 00 01 xx)
SEQUENCE_START = b"\x00\x00\x01\xb3"
PICTURE_START = b"\x00\x00\x01\x00"
SEQUENCE_END = b"\x00\x00\x01\xb7"

#: picture-type codes in the picture header
_TYPE_CODE = {FrameType.I: 1, FrameType.P: 2, FrameType.B: 3}
_CODE_TYPE = {v: k for k, v in _TYPE_CODE.items()}

#: picture header layout after the start code:
#: temporal reference (u32), type code (u8), payload length (u32)
_PICTURE_HEADER = struct.Struct(">IBI")
#: sequence header after its start code: fps*1000 (u32), frame count (u32)
_SEQUENCE_HEADER = struct.Struct(">II")


class BitstreamError(ValueError):
    """Malformed elementary stream."""


def serialize(file: MPEGFile) -> bytes:
    """Render *file* as an elementary-stream byte string."""
    out = bytearray()
    out += SEQUENCE_START
    out += _SEQUENCE_HEADER.pack(int(round(file.fps * 1000)), len(file.frames))
    for frame in file.frames:
        out += PICTURE_START
        out += _PICTURE_HEADER.pack(
            frame.seqno, _TYPE_CODE[frame.ftype], frame.size_bytes
        )
        # payload: deterministic filler derived from the seqno (the
        # scheduler never inspects it, but the bytes must really exist)
        out += bytes((frame.seqno + i) & 0xFF for i in range(frame.size_bytes))
    out += SEQUENCE_END
    return bytes(out)


class BitstreamSegmenter:
    """Incremental start-code scanner emitting typed frames.

    Feed byte chunks in any sizes with :meth:`push`; completed frames come
    back from each call. ``stream_id`` stamps the emitted frames.
    """

    def __init__(self, stream_id: str) -> None:
        self.stream_id = stream_id
        self._buf = bytearray()
        self._fps: Optional[float] = None
        self._expected_frames: Optional[int] = None
        self.frames_emitted = 0
        self.finished = False

    @property
    def fps(self) -> Optional[float]:
        return self._fps

    @property
    def expected_frames(self) -> Optional[int]:
        return self._expected_frames

    def push(self, chunk: bytes) -> list[MediaFrame]:
        """Consume *chunk*; return frames completed by it."""
        if self.finished:
            raise BitstreamError("stream already ended")
        self._buf += chunk
        frames: list[MediaFrame] = []
        while True:
            frame = self._try_parse_one()
            if frame is None:
                break
            frames.append(frame)
        return frames

    def segment_all(self, data: bytes) -> list[MediaFrame]:
        """One-shot convenience over a complete byte string."""
        frames = self.push(data)
        if not self.finished:
            raise BitstreamError("truncated stream (no sequence end)")
        return frames

    # -- parsing ----------------------------------------------------------------
    def _try_parse_one(self) -> Optional[MediaFrame]:
        buf = self._buf
        if len(buf) < 4:
            return None
        marker = bytes(buf[:4])
        if marker == SEQUENCE_START:
            need = 4 + _SEQUENCE_HEADER.size
            if len(buf) < need:
                return None
            fps_milli, count = _SEQUENCE_HEADER.unpack_from(buf, 4)
            if fps_milli == 0:
                raise BitstreamError("zero frame rate in sequence header")
            self._fps = fps_milli / 1000.0
            self._expected_frames = count
            del buf[:need]
            return self._try_parse_one()
        if marker == SEQUENCE_END:
            if self._expected_frames is not None and (
                self.frames_emitted != self._expected_frames
            ):
                raise BitstreamError(
                    f"sequence ended after {self.frames_emitted} frames, "
                    f"header promised {self._expected_frames}"
                )
            del buf[:4]
            self.finished = True
            return None
        if marker == PICTURE_START:
            if self._fps is None:
                raise BitstreamError("picture before sequence header")
            need = 4 + _PICTURE_HEADER.size
            if len(buf) < need:
                return None
            seqno, type_code, length = _PICTURE_HEADER.unpack_from(buf, 4)
            ftype = _CODE_TYPE.get(type_code)
            if ftype is None:
                raise BitstreamError(f"unknown picture type code {type_code}")
            if len(buf) < need + length:
                return None  # payload not fully buffered yet
            del buf[: need + length]
            self.frames_emitted += 1
            return MediaFrame(
                stream_id=self.stream_id,
                seqno=seqno,
                ftype=ftype,
                size_bytes=length,
                pts_us=seqno * 1_000_000.0 / self._fps,
            )
        raise BitstreamError(f"bad start code {marker!r}")
