"""MPEG client (player) model.

Remote client machines "running MPEG players ... attach to the scheduler
card for MPEG stream delivery" over switched 100 Mbps Ethernet. The client
here sinks frames from its Ethernet port, charges receive-stack cost, and
records the per-stream statistics the paper plots: delivered bandwidth over
time (Figures 7/9) and inter-arrival jitter.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.ethernet import CLIENT_STACK, EthernetPort, NetFrame, StackCosts
from repro.sim import Environment, RateEstimator, TallyStats, TimeSeries

__all__ = ["MPEGClient", "StreamReception"]


class StreamReception:
    """Per-stream reception record."""

    def __init__(self, stream_id: str, bandwidth_window_us: float = 1_000_000.0) -> None:
        self.stream_id = stream_id
        self.frames_received = 0
        self.bytes_received = 0
        self.last_arrival_us: Optional[float] = None
        #: sampled delivered bandwidth, bps (Figures 7/9 series)
        self.bandwidth_bps = TimeSeries(f"{stream_id}.bw")
        self._rate = RateEstimator(window_us=bandwidth_window_us)
        #: inter-arrival gap statistics (jitter)
        self.interarrival_us = TallyStats(f"{stream_id}.gap")
        self.out_of_order = 0
        self._highest_seq = -1
        #: raw (arrival time µs, payload bytes) log for exact rate queries
        self.arrivals: list[tuple[float, int]] = []

    def record(self, now_us: float, frame: NetFrame) -> None:
        self.frames_received += 1
        self.bytes_received += frame.payload_bytes
        self.arrivals.append((now_us, frame.payload_bytes))
        self._rate.add(now_us, frame.payload_bytes * 8.0)  # bits
        self.bandwidth_bps.record(now_us, self._rate.rate(now_us))
        if self.last_arrival_us is not None:
            self.interarrival_us.add(now_us - self.last_arrival_us)
        self.last_arrival_us = now_us
        if frame.seqno < self._highest_seq:
            self.out_of_order += 1
        else:
            self._highest_seq = frame.seqno

    def settled_bandwidth_bps(self, after_us: float) -> float:
        """Mean sampled bandwidth after *after_us* (the 'settling' value)."""
        return self.bandwidth_bps.mean(start=after_us)

    def mean_bandwidth_bps(self, start_us: float, end_us: float) -> float:
        """Exact delivered rate over [start, end): bits arrived / span.

        Unbiased even for low frame rates where the sliding-window series
        aliases against the window length.
        """
        span = end_us - start_us
        if span <= 0:
            raise ValueError("need end > start")
        bits = sum(b * 8.0 for t, b in self.arrivals if start_us <= t < end_us)
        return bits * 1_000_000.0 / span


class MPEGClient:
    """A player that joins the switch and consumes delivered frames.

    With ``consume_port=False`` the raw receive loop is not started: a
    reliable transport endpoint (:mod:`repro.net.transport`) owns the port
    instead and hands completed records in through :meth:`deliver` — two
    consumers on one port would steal each other's frames round-robin.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        port: EthernetPort,
        stack: StackCosts = CLIENT_STACK,
        consume_port: bool = True,
    ) -> None:
        self.env = env
        self.name = name
        self.port = port
        self.stack = stack
        self.receptions: dict[str, StreamReception] = {}
        self._proc = (
            env.process(self._run(), name=f"client:{name}") if consume_port else None
        )

    def _run(self) -> Generator:
        while True:
            frame: NetFrame = yield self.port.receive()
            # receive-side protocol processing before the frame is usable
            yield self.env.timeout(self.stack.cost_us(frame.payload_bytes))
            self.deliver(frame)

    def deliver(self, frame: NetFrame) -> None:
        """Record one usable frame (receive-side costs already paid)."""
        sid = frame.stream_id or "?"
        rec = self.receptions.get(sid)
        if rec is None:
            rec = self.receptions[sid] = StreamReception(sid)
        rec.record(self.env.now, frame)

    def reception(self, stream_id: str) -> StreamReception:
        try:
            return self.receptions[stream_id]
        except KeyError:
            raise KeyError(
                f"client {self.name!r} has received nothing on {stream_id!r}"
            ) from None

    @property
    def total_frames(self) -> int:
        return sum(r.frames_received for r in self.receptions.values())

    def __repr__(self) -> str:
        return f"<MPEGClient {self.name!r} frames={self.total_frames}>"
