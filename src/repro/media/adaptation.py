"""Runtime quality adaptation.

The paper's introduction motivates end-to-end adaptation: "media
caching/buffering and runtime variation of delivered service quality are
two of many techniques that attempt to deal with ... fluctuations in the
service offerings experienced by clients". This module provides the
mechanism on top of the MPEG substrate: a quality ladder built from the
GOP structure (drop B frames, then P frames) and an adapter that walks it
from observed delivery.

* :func:`quality_ladder` — the three renditions of one encoded file:
  ``full`` (I+P+B), ``anchors`` (I+P), ``intra`` (I only), each a plain
  frame list produced by the segmentation filter.
* :class:`QualityAdapter` — a control loop fed with per-window delivery
  observations (frames expected vs received); sustained deficit steps the
  ladder down, sustained health steps it back up, with hysteresis so the
  rendition doesn't flap.

The adapter is transport-agnostic: producers ask it which rendition to
inject next; anything that can count delivered frames can feed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .frames import FrameType, MediaFrame
from .mpeg import MPEGFile, segment

__all__ = ["Rendition", "quality_ladder", "QualityAdapter"]


@dataclass(frozen=True)
class Rendition:
    """One rung of the quality ladder."""

    name: str
    frames: tuple[MediaFrame, ...]
    #: fraction of the full rendition's bytes this rung carries
    byte_fraction: float

    def __len__(self) -> int:
        return len(self.frames)


def quality_ladder(file: MPEGFile) -> list[Rendition]:
    """Best-first renditions of *file*: full → anchors → intra."""
    total = file.size_bytes or 1
    rungs = []
    for name, types in (
        ("full", None),
        ("anchors", (FrameType.I, FrameType.P)),
        ("intra", (FrameType.I,)),
    ):
        frames = tuple(segment(file, types=types))
        if not frames:
            continue  # e.g. an all-B segment can't provide this rung
        rung_bytes = sum(f.size_bytes for f in frames)
        rungs.append(
            Rendition(name=name, frames=frames, byte_fraction=rung_bytes / total)
        )
    return rungs


class QualityAdapter:
    """Hysteretic ladder walker driven by delivery observations.

    Parameters
    ----------
    ladder:
        Renditions, best first (``quality_ladder`` output).
    degrade_below:
        Delivery ratio (received/expected per window) below which a window
        counts against the current rendition.
    upgrade_above:
        Ratio above which a window counts toward recovery.
    patience:
        Consecutive bad windows required to step down / good windows to
        step up (the hysteresis).
    """

    def __init__(
        self,
        ladder: list[Rendition],
        degrade_below: float = 0.85,
        upgrade_above: float = 0.98,
        patience: int = 3,
    ) -> None:
        if not ladder:
            raise ValueError("ladder must have at least one rendition")
        if not 0.0 < degrade_below <= upgrade_above <= 1.0:
            raise ValueError("need 0 < degrade_below <= upgrade_above <= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.ladder = list(ladder)
        self.degrade_below = degrade_below
        self.upgrade_above = upgrade_above
        self.patience = patience
        self._level = 0
        self._bad_windows = 0
        self._good_windows = 0
        self.downgrades = 0
        self.upgrades = 0
        #: (time, level) history for reporting
        self.transitions: list[tuple[float, int]] = []

    # -- state -----------------------------------------------------------------
    @property
    def level(self) -> int:
        return self._level

    @property
    def rendition(self) -> Rendition:
        return self.ladder[self._level]

    # -- the control loop ---------------------------------------------------------
    def observe(self, expected: int, received: int, now_us: float = 0.0) -> Rendition:
        """Feed one window's delivery outcome; returns the rendition to use."""
        if expected < 0 or received < 0:
            raise ValueError("counts must be non-negative")
        if expected == 0:
            return self.rendition  # nothing to judge this window
        ratio = min(1.0, received / expected)
        if ratio < self.degrade_below:
            self._bad_windows += 1
            self._good_windows = 0
            if self._bad_windows >= self.patience and self._level < len(self.ladder) - 1:
                self._level += 1
                self.downgrades += 1
                self._bad_windows = 0
                self.transitions.append((now_us, self._level))
        elif ratio >= self.upgrade_above:
            self._good_windows += 1
            self._bad_windows = 0
            if self._good_windows >= self.patience and self._level > 0:
                self._level -= 1
                self.upgrades += 1
                self._good_windows = 0
                self.transitions.append((now_us, self._level))
        else:
            # the dead band: neither counts — this is the hysteresis gap
            self._bad_windows = 0
            self._good_windows = 0
        return self.rendition

    def __repr__(self) -> str:
        return (
            f"<QualityAdapter level={self._level} ({self.rendition.name}) "
            f"down={self.downgrades} up={self.upgrades}>"
        )
