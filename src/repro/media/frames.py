"""Media frame and frame-descriptor types.

The unit of streaming *and* of scheduling in the paper is an MPEG-I frame.
The NI keeps a **single copy** of each frame's payload in card memory and
manipulates compact *descriptors* (address + attributes) — a design point
the paper stresses for conserving the i960 RD's 4 MB of local memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["FrameType", "MediaFrame", "FrameDescriptor", "DESCRIPTOR_BYTES"]

#: size of a packed frame descriptor in NI memory (address + attributes);
#: compact by design ("compact data structures ... that minimize the use of
#: NI memory").
DESCRIPTOR_BYTES = 32


class FrameType(enum.Enum):
    """MPEG-I picture types."""

    I = "I"
    P = "P"
    B = "B"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class MediaFrame:
    """One MPEG-I frame as produced by the segmenter."""

    stream_id: str
    seqno: int
    ftype: FrameType
    size_bytes: int
    #: presentation timestamp within the stream, µs
    pts_us: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("frame size must be positive")
        if self.seqno < 0:
            raise ValueError("seqno must be non-negative")


@dataclass
class FrameDescriptor:
    """Scheduler-side handle: where the frame lives plus QoS attributes.

    ``address`` stands in for the frame's location in pinned NI memory (the
    scheduler "manipulate[s] addresses of frames" rather than copying).
    ``deadline_us`` and the stream's loss-tolerance drive DWCS.
    """

    frame: MediaFrame
    address: int = 0
    #: latest service-start time (absolute sim time, µs)
    deadline_us: float = 0.0
    #: when the descriptor entered the scheduler's queues (for queuing-delay
    #: accounting, Figures 8/10)
    enqueued_at_us: float = 0.0
    #: set once this packet's deadline miss has been window-accounted, so a
    #: late-but-transmitted packet is charged exactly one miss
    miss_handled: bool = False

    @property
    def stream_id(self) -> str:
        return self.frame.stream_id

    @property
    def size_bytes(self) -> int:
        return self.frame.size_bytes
