"""Processes: generator coroutines driven by the event loop.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects. When a yielded event triggers, the process resumes with the event's
value (or the event's exception is thrown into it). A process is itself an
event that triggers when the generator returns (value = return value) or
raises (failure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

__all__ = ["Process"]


class Process(Event):
    """A running generator; also an event for its own termination."""

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        # Event.__init__ inlined; processes are created per request/stream.
        self.env = env
        self.name = name or getattr(generator, "__name__", None)
        self._state = 0  # PENDING
        self._value: Any = None
        self._ok = True
        self.callbacks = []
        self.defused = False
        self._generator = generator
        #: the event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None
        #: the bound resume callback, materialized once — creating a fresh
        #: bound method per yield is measurable at ~1 resume/event
        self._resume_cb = self._resume
        # Kick the process off via an immediately-scheduled init event.
        init = Event(env, name=self.name)
        init.callbacks.append(self._resume_cb)
        init.succeed()

    # -- introspection ------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == 0  # PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    # -- interruption --------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event
        stays valid and may trigger later — the process simply no longer
        listens to it).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver asynchronously through a failed event so ordering follows
        # the normal event queue; URGENT priority beats same-time events.
        carrier = Event(self.env, name=f"interrupt:{self.name}")
        carrier.defused = True
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._state = 1  # TRIGGERED
        carrier.callbacks.append(self._resume_cb)
        self.env._schedule_event(carrier, priority=0)

    # -- kernel --------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s outcome.

        This runs once per yield of every process — the busiest callback in
        the kernel — so state checks read the slots directly instead of
        going through the ``is_alive``/``processed`` properties.
        """
        if self._state != 0:  # not PENDING: the generator already finished
            # e.g. an interrupt landed after normal termination in the same
            # time step, or a stale target fired; nothing to do.
            return
        # Detach from the previous target: necessary when an interrupt
        # arrives while the old target is still pending.
        target = self._target
        if target is not None and target is not event:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        env = self.env
        env.active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as err:
            env.active_process = None
            self.fail(err)
            return
        env.active_process = None

        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {next_target!r}"
            )
        if next_target.env is not env:
            raise SimulationError("yielded an event from a different environment")
        self._target = next_target
        if next_target._state == 2:  # PROCESSED
            # Already done: resume on a fresh zero-delay event carrying the
            # same outcome so time ordering stays in the queue.
            carrier = Event(env)
            carrier.callbacks.append(self._resume_cb)
            carrier.trigger(next_target)
            # A failed-but-processed target has already surfaced or been
            # defused once; waiting on it re-delivers, so mark defused.
            carrier.defused = True
            self._target = carrier
        else:
            next_target.callbacks.append(self._resume_cb)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"
