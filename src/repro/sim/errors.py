"""Exception types raised by the simulation kernel.

The kernel distinguishes three failure modes:

* :class:`SimulationError` — programming errors in the use of the kernel
  (scheduling into the past, re-triggering an event, ...).
* :class:`Interrupt` — delivered *into* a process when another process
  interrupts it (e.g. preemption of a CPU slice).
* :class:`Preempted` — payload describing a resource preemption; carried as
  the ``cause`` of an :class:`Interrupt`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["SimulationError", "Interrupt", "Preempted", "StopSimulation"]


class SimulationError(RuntimeError):
    """Incorrect use of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown inside a process when it is interrupted by another process.

    ``cause`` carries an arbitrary payload explaining the interruption;
    for resource preemption it is a :class:`Preempted` record.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


@dataclass(frozen=True)
class Preempted:
    """Describes a preemption of a resource request.

    Attributes
    ----------
    by:
        The process (or other actor) that caused the preemption.
    usage_since:
        Simulated time at which the preempted user acquired the resource.
    resource:
        The resource the user was evicted from.
    """

    by: Any
    usage_since: float
    resource: Any
