"""Calendar event queue for the simulation kernel.

The kernel's reference event queue is a binary heap over
``(time, priority, seq, event)`` tuples (see
:mod:`repro.sim.environment`). This module provides the alternative the
paper's scheduler section names (§3.1.1 lists "FCFS circular buffers,
sorted lists, heaps or calendar queues" as interchangeable schedule
structures): a Brown-style **calendar queue** — events filed into
bucketed "days" by their timestamp, with the exact heap total order
preserved *within* a bucket.

Design points:

* **Total-order fidelity.** Buckets are keyed ``int(time // day_width)``,
  so equal timestamps always share a bucket; within a bucket entries are
  kept in heap order on the same ``(time, priority, seq)`` key the
  reference heap uses. Pop order is therefore *identical* to the binary
  heap's, bit for bit — proven by the differential tests and by the
  golden-digest oracle over every experiment.
* **Cohort extraction.** All events carrying the same timestamp live in
  one bucket, so :meth:`pop_cohort` drains a same-tick cohort in one
  bucket-local operation — the enabler for the batched dispatch loop in
  :meth:`Environment.run`.
* **Horizon-driven sizing.** The queue samples the *event horizon* of
  every push (how far ahead of the current tail the new event lands) and
  resizes its day width from those observed statistics whenever the
  population doubles or halves — wide days for sparse far-future
  schedules, narrow days for dense near-term ones. A day width may also
  be pinned explicitly (e.g. from a previous run's recorded stats).

The queue deliberately has no notion of event *removal*: the kernel only
ever enqueues triggered events and pops them in order (cancellation in
this kernel is a callback-level concern), which keeps every operation
O(log bucket) plus an amortized-O(1) occupied-day scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Optional

__all__ = ["CalendarEventQueue", "HorizonStats"]

#: hard bounds on the adaptive day width (µs): never slice finer than a
#: tenth of a microsecond, never coarser than 10 simulated seconds
_MIN_DAY_WIDTH_US = 0.1
_MAX_DAY_WIDTH_US = 10_000_000.0

#: resize when the population grows/shrinks past these factors since the
#: last resize (Brown's doubling rule, with hysteresis)
_GROW_FACTOR = 2
_SHRINK_FACTOR = 2

#: target mean occupancy per occupied day after a resize
_TARGET_PER_DAY = 3.0


@dataclass
class HorizonStats:
    """Running tally of observed push horizons (µs ahead of the clock)."""

    count: int = 0
    total_us: float = 0.0
    max_us: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def record(self, horizon_us: float) -> None:
        self.count += 1
        self.total_us += horizon_us
        if horizon_us > self.max_us:
            self.max_us = horizon_us

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
        }


class CalendarEventQueue:
    """Bucketed-day event queue with exact heap-order semantics.

    Parameters
    ----------
    day_width_us:
        Initial bucket width. ``None`` starts from a neutral default and
        lets the horizon-driven resizing take over; an explicit value
        (e.g. derived from a previous run's :attr:`horizon` stats) pins
        the starting geometry, though adaptive resizing still applies
        unless ``adaptive=False``.
    adaptive:
        When False the day width never changes after construction.
    """

    def __init__(
        self, day_width_us: Optional[float] = None, adaptive: bool = True
    ) -> None:
        if day_width_us is not None and day_width_us <= 0:
            raise ValueError("day width must be positive")
        self.day_width_us = float(day_width_us) if day_width_us else 1_000.0
        self.adaptive = adaptive
        #: occupied days: day index -> heap of (time, priority, seq, event)
        self._days: dict[int, list] = {}
        #: lazy min-heap over occupied day indices (stale entries skipped)
        self._day_heap: list[int] = []
        self._count = 0
        #: time of the most recently popped event — the queue's own clock,
        #: used as the horizon reference for pushes
        self._clock = 0.0
        #: lifetime push-horizon statistics (drives the resize policy)
        self.horizon = HorizonStats()
        self.resizes = 0
        self._resize_anchor = 8  # population at the last resize (floor 8)

    # -- sizing ---------------------------------------------------------------
    @classmethod
    def day_width_from_stats(
        cls, stats: HorizonStats, population: int
    ) -> float:
        """Day width putting ~``_TARGET_PER_DAY`` events per occupied day.

        With *population* pending events spread over a mean horizon of
        ``stats.mean_us``, the mean inter-event gap is ``mean / n``; a day
        then covers ``_TARGET_PER_DAY`` gaps (Brown's guidance of a few
        events per bucket), clamped to the global bounds.
        """
        n = max(1, population)
        gap = stats.mean_us / n if stats.count else 0.0
        width = gap * _TARGET_PER_DAY
        return min(_MAX_DAY_WIDTH_US, max(_MIN_DAY_WIDTH_US, width))

    def _maybe_resize(self) -> None:
        anchor = self._resize_anchor
        n = self._count
        if n > anchor * _GROW_FACTOR or n < anchor // _SHRINK_FACTOR:
            self._resize(self.day_width_from_stats(self.horizon, n))

    def _resize(self, new_width: float) -> None:
        self._resize_anchor = max(8, self._count)
        if new_width == self.day_width_us:
            return
        self.day_width_us = new_width
        items = [item for bucket in self._days.values() for item in bucket]
        self._days.clear()
        self._day_heap.clear()
        days = self._days
        for item in items:
            day = int(item[0] // new_width)
            bucket = days.get(day)
            if bucket is None:
                days[day] = [item]
                heappush(self._day_heap, day)
            else:
                bucket.append(item)
        for bucket in days.values():
            heapify(bucket)
        self.resizes += 1

    # -- queue protocol -------------------------------------------------------
    def push(self, item: tuple) -> None:
        """File ``(time, priority, seq, event)``; samples the horizon."""
        t = item[0]
        self.horizon.record(t - self._clock)
        day = int(t // self.day_width_us)
        bucket = self._days.get(day)
        if bucket is None:
            self._days[day] = [item]
            heappush(self._day_heap, day)
        else:
            heappush(bucket, item)
        self._count += 1
        if self.adaptive:
            self._maybe_resize()

    def push_back(self, item: tuple) -> None:
        """Re-file an item popped but not dispatched (no horizon sample)."""
        day = int(item[0] // self.day_width_us)
        bucket = self._days.get(day)
        if bucket is None:
            self._days[day] = [item]
            heappush(self._day_heap, day)
        else:
            heappush(bucket, item)
        self._count += 1

    def _min_day(self) -> int:
        """Index of the earliest occupied day (assumes non-empty queue)."""
        day_heap = self._day_heap
        days = self._days
        while True:
            day = day_heap[0]
            if day in days:
                return day
            heappop(day_heap)

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` when empty."""
        if not self._count:
            return float("inf")
        return self._days[self._min_day()][0][0]

    def pop(self) -> tuple:
        """Remove and return the least ``(time, priority, seq, event)``."""
        if not self._count:
            raise IndexError("pop from an empty CalendarEventQueue")
        day = self._min_day()
        bucket = self._days[day]
        item = heappop(bucket)
        if not bucket:
            del self._days[day]
            heappop(self._day_heap)
        self._count -= 1
        self._clock = item[0]
        return item

    def pop_cohort(self) -> list:
        """Drain every event sharing the earliest timestamp, in heap order.

        Equal timestamps always share a bucket, so the cohort comes out of
        one bucket-local drain; the returned list is ordered by
        ``(priority, seq)`` — exactly the order the reference heap would
        pop them in.
        """
        if not self._count:
            raise IndexError("pop_cohort from an empty CalendarEventQueue")
        day = self._min_day()
        bucket = self._days[day]
        first = heappop(bucket)
        t = first[0]
        cohort = [first]
        while bucket and bucket[0][0] == t:
            cohort.append(heappop(bucket))
        if not bucket:
            del self._days[day]
            heappop(self._day_heap)
        self._count -= len(cohort)
        self._clock = t
        return cohort

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict:
        """Geometry + horizon statistics (feeds docs/diagnostics)."""
        buckets = len(self._days)
        return {
            "structure": "calendar",
            "pending": self._count,
            "day_width_us": self.day_width_us,
            "occupied_days": buckets,
            "mean_occupancy": (self._count / buckets) if buckets else 0.0,
            "resizes": self.resizes,
            "horizon": self.horizon.as_dict(),
        }

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __repr__(self) -> str:
        return (
            f"<CalendarEventQueue pending={self._count} "
            f"day_width={self.day_width_us:.1f}us days={len(self._days)}>"
        )
