"""Deterministic random-number management.

Every stochastic component (disk geometry, web request interarrivals, MPEG
frame sizes, ...) draws from its own *named substream* derived from a single
experiment seed, so adding a new random component never perturbs the draws of
existing ones — a requirement for regression-stable experiment output.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named ``numpy`` generators under one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for *name* (created deterministically on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
