"""The simulation environment: clock, event queue, and run loop.

Time is a ``float`` in **microseconds** throughout this project — the paper
reports every primitive in µs (scheduling overhead ≈65 µs, PIO word read
3.6 µs, Ethernet frame time ≈120 µs), so a µs base keeps every constant
legible against the paper's tables.

The event queue is a binary heap keyed by ``(time, priority, sequence)``;
the monotone sequence number makes same-time processing deterministic
(FIFO in scheduling order), which the reproduction relies on for exact
repeatability of every experiment.

Hot-path notes (the wall-clock benchmark harness pins these): ``now`` is a
plain attribute (read-only by convention — only the kernel writes it), the
``run()`` loop inlines the body of :meth:`Environment.step`, and events
with no registered callbacks skip the callback hand-off entirely. All of
this is observably identical to the straightforward implementation; the
golden-digest tests prove it stays bit-identical.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RandomStreams

__all__ = ["Environment", "US", "MS", "S"]

# Unit helpers: multiply readable durations into the µs time base.
US = 1.0
MS = 1_000.0
S = 1_000_000.0

#: Default event priority. Lower runs first among same-time events.
NORMAL = 1
#: Priority used for urgent kernel bookkeeping (e.g. interrupts).
URGENT = 0


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting clock value in microseconds.
    seed:
        When given, attaches an ambient
        :class:`~repro.sim.rng.RandomStreams` family as ``env.rng``, so
        every stochastic component of a run can derive its named
        substream from one explicit experiment seed instead of being
        seeded ad hoc (or not at all). ``None`` leaves ``env.rng`` as
        ``None`` — existing call sites that pass their own RNG families
        are unaffected.
    """

    def __init__(self, initial_time: float = 0.0, seed: Optional[int] = None) -> None:
        #: current simulated time in microseconds; written only by the
        #: kernel (``step``/``run``), read everywhere
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        #: ambient seeded RNG family (None unless a seed was given)
        self.rng = None if seed is None else RandomStreams(seed)
        # Pre-resolved per-environment hook table. Both planes bind into a
        # slot that exists from construction, so the ~40 datapath hooks
        # across hw/net/dvcm/core/server cost one plain attribute load when
        # nothing is installed (no ``getattr``-with-default machinery).
        #: observability hook slot (:class:`~repro.obs.ObservabilityPlane`)
        self.obs = None
        #: fault-injection hook slot (:class:`~repro.faults.FaultPlane`)
        self.fault_plane = None
        # Shadow the factory methods with C-level partials: event/timeout/
        # process are called hundreds of thousands of times per run, and the
        # pure-Python wrapper frame is measurable. The methods below remain
        # as documentation and as the uncached (class-level) fallback.
        self.event = partial(Event, self)
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)

    # -- factories ----------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` µs from now."""
        return Timeout(self, delay, value=value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Spawn *generator* as a new process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue *event* for callback processing ``delay`` µs from now.

        ``Event.succeed``/``fail`` and ``Timeout.__init__`` push onto the
        heap directly (same key layout) to keep the trigger path flat; any
        other scheduling goes through here.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: Optional[str] = None
    ) -> Event:
        """Run *callback* after ``delay`` µs; returns the underlying event."""
        ev = Timeout(self, delay, name=name)
        ev.callbacks.append(lambda _e: callback())
        return ev

    # -- run loop -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        ``run()`` inlines this body; changes here must be mirrored there.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self.now = when
        event._state = 2  # PROCESSED (also marks deferred-trigger Timeouts)
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for cb in callbacks:
                cb(event)
        if not event._ok and not event.defused:
            # A failed event nobody waited on: surface the error loudly
            # instead of silently losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, *until* time passes, or event fires.

        Returns the value of *until* when it is an event; otherwise ``None``.
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event._state == 2:  # already processed
                return self._unwrap(stop_event)

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self.now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self.now})"
                )

        # The hot loop: step() inlined (see its docstring), with the heap
        # and heappop bound locally so each iteration is a handful of
        # attribute-free operations for the common no-callback event.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue and queue[0][0] <= stop_at:
                when, _prio, _seq, event = pop(queue)
                self.now = when
                event._state = 2  # PROCESSED
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                if not event._ok and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            return self._unwrap(stop.value)
        if stop_event is not None:
            raise SimulationError(
                f"run() ran out of events before {stop_event!r} triggered"
            )
        if stop_at != float("inf"):
            self.now = max(self.now, stop_at)
        return None

    @staticmethod
    def _unwrap(event: Event) -> Any:
        """Return a finished event's value, raising its exception on failure."""
        if event._ok:
            return event._value
        event.defused = True
        raise event._value

    def __repr__(self) -> str:
        return f"<Environment t={self.now:.3f}us queued={len(self._queue)}>"
