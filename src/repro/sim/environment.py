"""The simulation environment: clock, event queue, and run loop.

Time is a ``float`` in **microseconds** throughout this project — the paper
reports every primitive in µs (scheduling overhead ≈65 µs, PIO word read
3.6 µs, Ethernet frame time ≈120 µs), so a µs base keeps every constant
legible against the paper's tables.

The event queue is a binary heap keyed by ``(time, priority, sequence)``;
the monotone sequence number makes same-time processing deterministic
(FIFO in scheduling order), which the reproduction relies on for exact
repeatability of every experiment.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "US", "MS", "S"]

# Unit helpers: multiply readable durations into the µs time base.
US = 1.0
MS = 1_000.0
S = 1_000_000.0

#: Default event priority. Lower runs first among same-time events.
NORMAL = 1
#: Priority used for urgent kernel bookkeeping (e.g. interrupts).
URGENT = 0


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting clock value in microseconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` µs from now."""
        return Timeout(self, delay, value=value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Spawn *generator* as a new process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue *event* for callback processing ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: Optional[str] = None
    ) -> Event:
        """Run *callback* after ``delay`` µs; returns the underlying event."""
        ev = Timeout(self, delay, name=name)
        ev.callbacks.append(lambda _e: callback())
        return ev

    # -- run loop -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event queue produced a time in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()  # also marks deferred-trigger events (Timeout)
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            # A failed event nobody waited on: surface the error loudly
            # instead of silently losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, *until* time passes, or event fires.

        Returns the value of *until* when it is an event; otherwise ``None``.
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return self._unwrap(stop_event)

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})"
                )

        try:
            while self._queue and self.peek() <= stop_at:
                self.step()
        except StopSimulation as stop:
            return self._unwrap(stop.value)
        if stop_event is not None:
            raise SimulationError(
                f"run() ran out of events before {stop_event!r} triggered"
            )
        if stop_at != float("inf"):
            self._now = max(self._now, stop_at)
        return None

    @staticmethod
    def _unwrap(event: Event) -> Any:
        """Return a finished event's value, raising its exception on failure."""
        if event._ok:
            return event._value
        event.defused = True
        raise event._value

    def __repr__(self) -> str:
        return f"<Environment t={self._now:.3f}us queued={len(self._queue)}>"
