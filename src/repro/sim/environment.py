"""The simulation environment: clock, event queue, and run loop.

Time is a ``float`` in **microseconds** throughout this project — the paper
reports every primitive in µs (scheduling overhead ≈65 µs, PIO word read
3.6 µs, Ethernet frame time ≈120 µs), so a µs base keeps every constant
legible against the paper's tables.

The event queue is keyed by ``(time, priority, sequence)``; the monotone
sequence number makes same-time processing deterministic (FIFO in
scheduling order), which the reproduction relies on for exact
repeatability of every experiment. Two queue structures implement that
total order:

* the reference **binary heap** (a plain list + ``heapq``), and
* a :class:`~repro.sim.calendar.CalendarEventQueue` — bucketed days sized
  from observed event-horizon statistics, with heap order preserved
  within a bucket, selected via ``Environment(queue="calendar")`` or the
  ``REPRO_EVENT_QUEUE`` environment variable.

Both produce bit-identical runs (the golden-digest oracle proves it); the
calendar path additionally dispatches same-tick *cohorts* — the full set
of events sharing the current timestamp is drained in one bucket-local
operation and dispatched in sequence order.

Hot-path notes (the wall-clock benchmark harness pins these): ``now`` is a
plain attribute (read-only by convention — only the kernel writes it), the
``run()`` loop inlines the body of :meth:`Environment.step`, and events
with no registered callbacks skip the callback hand-off entirely. All of
this is observably identical to the straightforward implementation; the
golden-digest tests prove it stays bit-identical.
"""

from __future__ import annotations

import heapq
import os
from functools import partial
from typing import Any, Callable, Generator, Iterable, Optional

from .calendar import CalendarEventQueue
from .errors import SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RandomStreams

__all__ = ["Environment", "US", "MS", "S"]

#: environment variable selecting the ambient event-queue structure for
#: every Environment that is not given an explicit ``queue=`` argument
QUEUE_ENV_VAR = "REPRO_EVENT_QUEUE"

# Unit helpers: multiply readable durations into the µs time base.
US = 1.0
MS = 1_000.0
S = 1_000_000.0

#: Default event priority. Lower runs first among same-time events.
NORMAL = 1
#: Priority used for urgent kernel bookkeeping (e.g. interrupts).
URGENT = 0


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting clock value in microseconds.
    seed:
        When given, attaches an ambient
        :class:`~repro.sim.rng.RandomStreams` family as ``env.rng``, so
        every stochastic component of a run can derive its named
        substream from one explicit experiment seed instead of being
        seeded ad hoc (or not at all). ``None`` leaves ``env.rng`` as
        ``None`` — existing call sites that pass their own RNG families
        are unaffected.
    queue:
        Event-queue structure: ``"heap"`` (the reference binary heap),
        ``"calendar"`` (a :class:`~repro.sim.calendar.CalendarEventQueue`),
        or a ready queue object exposing ``push``/``push_back``/``pop``/
        ``pop_cohort``/``peek``/``__len__``. ``None`` (the default) reads
        the ``REPRO_EVENT_QUEUE`` environment variable and falls back to
        the heap, so whole experiment suites can be flipped to the
        calendar kernel without touching construction sites.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        seed: Optional[int] = None,
        queue: Any = None,
    ) -> None:
        #: current simulated time in microseconds; written only by the
        #: kernel (``step``/``run``), read everywhere
        self.now = float(initial_time)
        from_env = False
        if queue is None:
            queue = os.environ.get(QUEUE_ENV_VAR, "heap")
            from_env = True
        if queue == "heap":
            self._queue: Any = []
            #: the one scheduling entry point every trigger path calls; a
            #: C-level partial for the heap keeps it as cheap as the
            #: direct ``heappush`` it replaces
            self._push = partial(heapq.heappush, self._queue)
        else:
            if queue == "calendar":
                queue = CalendarEventQueue()
            elif isinstance(queue, str):
                # Catch the typo at construction, not as an obscure failure
                # deep in the run loop — and say where the bad name came
                # from when it rode in through the environment variable.
                source = f" (from {QUEUE_ENV_VAR})" if from_env else ""
                raise SimulationError(
                    f"unknown event queue {queue!r}{source}; "
                    "valid names: 'heap', 'calendar'"
                )
            elif not (hasattr(queue, "push") and hasattr(queue, "pop_cohort")):
                raise SimulationError(
                    f"queue must be 'heap', 'calendar', or a queue object, got {queue!r}"
                )
            self._queue = queue
            self._push = queue.push
        #: set when an above-NORMAL-priority event lands at the current
        #: time while a same-tick cohort is mid-dispatch; tells the
        #: calendar run loop to re-merge the remaining cohort so the
        #: urgent event keeps its heap-identical position
        self._urgent_dirty = False
        self._seq = 0
        self.active_process: Optional[Process] = None
        #: ambient seeded RNG family (None unless a seed was given)
        self.rng = None if seed is None else RandomStreams(seed)
        # Pre-resolved per-environment hook table. Both planes bind into a
        # slot that exists from construction, so the ~40 datapath hooks
        # across hw/net/dvcm/core/server cost one plain attribute load when
        # nothing is installed (no ``getattr``-with-default machinery).
        #: observability hook slot (:class:`~repro.obs.ObservabilityPlane`)
        self.obs = None
        #: fault-injection hook slot (:class:`~repro.faults.FaultPlane`)
        self.fault_plane = None
        #: components that cached the hook slots above and need a re-resolve
        #: whenever a plane binds or unbinds (see :meth:`hooks_changed`)
        self._hook_watchers: list[Callable[["Environment"], None]] = []
        # Shadow the factory methods with C-level partials: event/timeout/
        # process are called hundreds of thousands of times per run, and the
        # pure-Python wrapper frame is measurable. The methods below remain
        # as documentation and as the uncached (class-level) fallback.
        self.event = partial(Event, self)
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)

    # -- factories ----------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` µs from now."""
        return Timeout(self, delay, value=value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Spawn *generator* as a new process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue *event* for callback processing ``delay`` µs from now.

        ``Event.succeed``/``fail`` and ``Timeout.__init__`` push onto the
        heap directly (same key layout) to keep the trigger path flat; any
        other scheduling goes through here.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        if priority < NORMAL and self.now + delay == self.now:
            # An urgent event landing at the *current* tick (e.g. a process
            # interrupt, delay 0) may have to preempt a same-tick cohort
            # already popped by the calendar run loop. Future-time urgent
            # events sort normally and need no re-merge.
            self._urgent_dirty = True
        self._push((self.now + delay, priority, self._seq, event))

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: Optional[str] = None
    ) -> Event:
        """Run *callback* after ``delay`` µs; returns the underlying event."""
        ev = Timeout(self, delay, name=name)
        ev.callbacks.append(lambda _e: callback())
        return ev

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = NORMAL,
        name: Optional[str] = None,
    ) -> Event:
        """Run *callback* at absolute simulated *time* (``>= now``).

        The cross-partition injection point: a partitioned run
        (:mod:`repro.pdes`) delivers a peer's timestamped message by
        scheduling its local effect at the message's delivery time, with
        an explicit *priority* so delivery order against same-tick local
        events is pinned. Scheduling into the past raises — this is the
        hard causality guard the PDES coordinator leans on.
        """
        delay = time - self.now
        if delay < 0:
            raise SimulationError(
                f"schedule_at(t={time}) is in the past (now={self.now})"
            )
        ev = Event(self, name=name)
        ev.callbacks.append(lambda _e: callback())
        self._schedule_event(ev, delay, priority)
        return ev

    # -- hook-slot watchers --------------------------------------------------
    def add_hook_watcher(self, callback: Callable[["Environment"], None]) -> None:
        """Register *callback* to re-run whenever a plane binds or unbinds.

        Hot-path components may cache ``env.obs`` / ``env.fault_plane``
        into instance slots at construction (one attribute load per packet
        instead of two). Planes can be installed *after* construction
        (chaos runs build the fault plane once the stacks exist), so every
        such component registers a watcher and re-resolves its cached
        slots on :meth:`hooks_changed`.
        """
        self._hook_watchers.append(callback)

    def hooks_changed(self) -> None:
        """Notify watchers that ``env.obs``/``env.fault_plane`` changed."""
        for cb in self._hook_watchers:
            cb(self)

    # -- run loop -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        queue = self._queue
        if type(queue) is list:
            return queue[0][0] if queue else float("inf")
        return queue.peek()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        ``run()`` inlines this body; changes here must be mirrored there.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        queue = self._queue
        if type(queue) is list:
            when, _prio, _seq, event = heapq.heappop(queue)
        else:
            when, _prio, _seq, event = queue.pop()
        self.now = when
        event._state = 2  # PROCESSED (also marks deferred-trigger Timeouts)
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for cb in callbacks:
                cb(event)
        if not event._ok and not event.defused:
            # A failed event nobody waited on: surface the error loudly
            # instead of silently losing it.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, *until* time passes, or event fires.

        Returns the value of *until* when it is an event; otherwise ``None``.
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event._state == 2:  # already processed
                return self._unwrap(stop_event)

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self.now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self.now})"
                )

        queue = self._queue
        try:
            if type(queue) is list:
                # The reference hot loop: step() inlined (see its
                # docstring), with the heap and heappop bound locally so
                # each iteration is a handful of attribute-free operations
                # for the common no-callback event.
                pop = heapq.heappop
                while queue and queue[0][0] <= stop_at:
                    when, _prio, _seq, event = pop(queue)
                    self.now = when
                    event._state = 2  # PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if not event._ok and not event.defused:
                        raise event._value
            else:
                self._run_cohorts(queue, stop_at)
        except StopSimulation as stop:
            return self._unwrap(stop.value)
        if stop_event is not None:
            raise SimulationError(
                f"run() ran out of events before {stop_event!r} triggered"
            )
        if stop_at != float("inf"):
            self.now = max(self.now, stop_at)
        return None

    def _run_cohorts(self, queue: Any, stop_at: float) -> None:
        """The calendar-kernel run loop: same-tick cohort dispatch.

        Pops the full cohort at the earliest timestamp in one bucket-local
        drain and dispatches it in ``(priority, seq)`` order. Two
        invariants keep this bit-identical to the one-event-at-a-time
        heap loop:

        * events scheduled *during* cohort dispatch carry later sequence
          numbers than every popped cohort member, so NORMAL-priority
          arrivals at the same tick correctly wait for the next cohort;
        * an URGENT arrival at the same tick (a process interrupt) must
          preempt the not-yet-dispatched remainder — ``_schedule_event``
          raises ``_urgent_dirty`` and the loop re-merges the remaining
          cohort back into the queue so the urgent event sorts into its
          heap-identical position.

        On any exception (including ``StopSimulation`` from a
        run-until-event callback) the undispatched remainder is re-filed,
        matching the heap loop's leave-the-rest-queued semantics.
        """
        while queue:
            when = queue.peek()
            if when > stop_at:
                return
            cohort = queue.pop_cohort()
            self.now = when
            # Cohort boundary: the queue is fully merged here, so any flag
            # left over (raised outside dispatch, or while dispatching a
            # cohort's final member) is stale.
            self._urgent_dirty = False
            idx = 0
            n = len(cohort)
            try:
                while idx < n:
                    event = cohort[idx][3]
                    idx += 1
                    event._state = 2  # PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if not event._ok and not event.defused:
                        raise event._value
                    if self._urgent_dirty:
                        self._urgent_dirty = False
                        break  # re-merge: let the urgent event sort in
            finally:
                while idx < n:
                    queue.push_back(cohort[idx])
                    idx += 1

    @staticmethod
    def _unwrap(event: Event) -> Any:
        """Return a finished event's value, raising its exception on failure."""
        if event._ok:
            return event._value
        event.defused = True
        raise event._value

    def __repr__(self) -> str:
        return f"<Environment t={self.now:.3f}us queued={len(self._queue)}>"
