"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorized records from any
component that accepts one (the DWCS scheduler emits ``decision``,
``drop``, ``violation``; attach your own categories freely). Traces answer
the questions raw counters can't — *when* did the drops cluster, what did
the scheduler pick right before a violation — and export to JSON-lines for
external tooling.

Beyond point events, the tracer records **spans**: begin/end pairs with
optional parent links, the substrate of the observability plane's
per-frame datapath traces (:mod:`repro.obs`). A span begun under a
filtered-out category costs one predicate check and returns ``None``;
``end_span(None)`` is a no-op, so instrumented code needs no second guard.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

__all__ = ["TraceEvent", "Tracer", "RESERVED_FIELD_KEYS"]

#: top-level JSONL keys owned by the event envelope; a payload field with
#: one of these names is exported under an ``f_`` prefix instead of
#: silently clobbering the timestamp/category/name columns
RESERVED_FIELD_KEYS = frozenset({"t", "cat", "name"})


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time_us: float
    category: str
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "t": self.time_us,
            "cat": self.category,
            "name": self.name,
        }
        for key, value in self.fields.items():
            # namespace collisions with the envelope keys rather than
            # letting a payload field named 't'/'cat'/'name' overwrite them
            out[f"f_{key}" if key in RESERVED_FIELD_KEYS else key] = value
        return out


class Tracer:
    """Bounded, filterable trace collector.

    Parameters
    ----------
    env:
        Clock source.
    categories:
        When given, only these categories are recorded (cheap pre-filter).
    capacity:
        Ring bound: oldest events are discarded beyond it (a trace must
        never be the thing that exhausts memory).
    """

    def __init__(
        self,
        env: "Environment",
        categories: Optional[Iterable[str]] = None,
        capacity: int = 100_000,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.env = env
        self.categories = frozenset(categories) if categories is not None else None
        self.capacity = capacity
        # deque(maxlen=...) evicts the oldest event in O(1); a plain list
        # would pay an O(capacity) front-delete on every emit once full.
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.discarded = 0
        # -- span bookkeeping ------------------------------------------------
        self._span_seq = 0
        #: span_id -> (category, name, begin_time_us) for spans not yet ended
        self._open_spans: dict[int, tuple[str, str, float]] = {}
        #: end_span calls whose id was unknown or already closed
        self.unbalanced_ends = 0

    # -- recording ----------------------------------------------------------
    def wants(self, category: str) -> bool:
        """Cheap guard so emitters can skip building field dicts."""
        return self.categories is None or category in self.categories

    def emit(self, category: str, name: str, **fields: Any) -> None:
        if not self.wants(category):
            return
        self._record(category, name, fields)

    def _record(self, category: str, name: str, fields: dict[str, Any]) -> None:
        self.emitted += 1
        if len(self._events) == self.capacity:
            self.discarded += 1  # deque drops the oldest on append
        self._events.append(
            TraceEvent(time_us=self.env.now, category=category, name=name, fields=fields)
        )

    # -- spans ---------------------------------------------------------------
    def begin_span(
        self,
        category: str,
        name: str,
        parent: Optional[int] = None,
        **fields: Any,
    ) -> Optional[int]:
        """Open a span; returns its id (pass to :meth:`end_span`).

        Returns ``None`` when *category* is filtered out — the matching
        ``end_span(None)`` is then free, so call sites need one guard only.
        """
        if not self.wants(category):
            return None
        self._span_seq += 1
        span_id = self._span_seq
        self._open_spans[span_id] = (category, name, self.env.now)
        payload = {**fields, "ph": "B", "span": span_id}
        if parent is not None:
            payload["parent"] = parent
        self._record(category, name, payload)
        return span_id

    def end_span(self, span_id: Optional[int], **fields: Any) -> None:
        """Close a span opened by :meth:`begin_span`."""
        if span_id is None:
            return
        opened = self._open_spans.pop(span_id, None)
        if opened is None:
            self.unbalanced_ends += 1
            return
        category, name, _begin_us = opened
        self._record(category, name, {**fields, "ph": "E", "span": span_id})

    def instant(self, category: str, name: str, **fields: Any) -> None:
        """Record a zero-duration marker (rendered as an instant event)."""
        if not self.wants(category):
            return
        self._record(category, name, {**fields, "ph": "i"})

    @property
    def open_span_count(self) -> int:
        """Spans begun but not yet ended (unbalanced-span detection)."""
        return len(self._open_spans)

    def open_spans(self) -> list[tuple[int, str, str, float]]:
        """``(span_id, category, name, begin_time_us)`` of unclosed spans."""
        return [
            (span_id, category, name, begin_us)
            for span_id, (category, name, begin_us) in sorted(self._open_spans.items())
        ]

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        start_us: float = float("-inf"),
        end_us: float = float("inf"),
    ) -> list[TraceEvent]:
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
            and start_us <= e.time_us < end_us
        ]

    def counts(self) -> dict[str, int]:
        """{category: event count} over the retained window."""
        out: dict[str, int] = {}
        for e in self._events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    def to_jsonl(self) -> str:
        """JSON-lines export (one event per line, newline-terminated so
        concatenated exports stay one-event-per-line)."""
        return "".join(json.dumps(e.to_dict()) + "\n" for e in self._events)

    def dump(self, path) -> int:
        """Stream the retained events to *path* as JSONL; returns the count.

        Writes line by line — no giant intermediate string — so a
        full-capacity trace exports in O(1) extra memory.
        """
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            for e in self._events:
                fh.write(json.dumps(e.to_dict()))
                fh.write("\n")
                count += 1
        return count

    def __repr__(self) -> str:
        return f"<Tracer {len(self._events)} events (emitted={self.emitted})>"
