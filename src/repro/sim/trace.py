"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorized records from any
component that accepts one (the DWCS scheduler emits ``decision``,
``drop``, ``violation``; attach your own categories freely). Traces answer
the questions raw counters can't — *when* did the drops cluster, what did
the scheduler pick right before a violation — and export to JSON-lines for
external tooling.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time_us: float
    category: str
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "t": self.time_us,
            "cat": self.category,
            "name": self.name,
            **self.fields,
        }


class Tracer:
    """Bounded, filterable trace collector.

    Parameters
    ----------
    env:
        Clock source.
    categories:
        When given, only these categories are recorded (cheap pre-filter).
    capacity:
        Ring bound: oldest events are discarded beyond it (a trace must
        never be the thing that exhausts memory).
    """

    def __init__(
        self,
        env: "Environment",
        categories: Optional[Iterable[str]] = None,
        capacity: int = 100_000,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.env = env
        self.categories = frozenset(categories) if categories is not None else None
        self.capacity = capacity
        # deque(maxlen=...) evicts the oldest event in O(1); a plain list
        # would pay an O(capacity) front-delete on every emit once full.
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.discarded = 0

    # -- recording ----------------------------------------------------------
    def wants(self, category: str) -> bool:
        """Cheap guard so emitters can skip building field dicts."""
        return self.categories is None or category in self.categories

    def emit(self, category: str, name: str, **fields: Any) -> None:
        if not self.wants(category):
            return
        self.emitted += 1
        if len(self._events) == self.capacity:
            self.discarded += 1  # deque drops the oldest on append
        self._events.append(
            TraceEvent(time_us=self.env.now, category=category, name=name, fields=fields)
        )

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        start_us: float = float("-inf"),
        end_us: float = float("inf"),
    ) -> list[TraceEvent]:
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
            and start_us <= e.time_us < end_us
        ]

    def counts(self) -> dict[str, int]:
        """{category: event count} over the retained window."""
        out: dict[str, int] = {}
        for e in self._events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    def to_jsonl(self) -> str:
        """JSON-lines export (one event per line)."""
        return "\n".join(json.dumps(e.to_dict()) for e in self._events)

    def __repr__(self) -> str:
        return f"<Tracer {len(self._events)} events (emitted={self.emitted})>"
