"""Discrete-event simulation kernel.

A compact, deterministic, generator-coroutine kernel (SimPy-flavoured API)
with microsecond time base. See :mod:`repro.sim.environment` for the time
conventions used throughout the reproduction.
"""

from .calendar import CalendarEventQueue, HorizonStats
from .environment import MS, S, US, Environment
from .errors import Interrupt, Preempted, SimulationError
from .events import AllOf, AnyOf, ConditionValue, Event, Timeout
from .monitor import RateEstimator, TallyStats, TimeSeries
from .process import Process
from .resources import PreemptiveResource, Request, Resource, Store, StoreGet, StorePut
from .rng import RandomStreams
from .trace import TraceEvent, Tracer

__all__ = [
    "Environment",
    "US",
    "MS",
    "S",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Process",
    "Interrupt",
    "Preempted",
    "SimulationError",
    "Resource",
    "PreemptiveResource",
    "Request",
    "Store",
    "StoreGet",
    "StorePut",
    "TimeSeries",
    "TallyStats",
    "RateEstimator",
    "RandomStreams",
    "CalendarEventQueue",
    "HorizonStats",
    "Tracer",
    "TraceEvent",
]
