"""Shared resources: counted resources (with priorities and preemption)
and FIFO stores (message channels).

These model contended hardware in the reproduction: a PCI bus segment is a
``Resource(capacity=1)`` (one transaction at a time, priority = arbitration),
a disk is a ``Resource(capacity=1)`` with FIFO request ordering, and I2O
message queues between host and NI are ``Store`` channels.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from .errors import Preempted, SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment
    from .process import Process

__all__ = ["Request", "Resource", "PreemptiveResource", "Store", "StoreGet", "StorePut"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # resource held here
    """

    __slots__ = ("resource", "priority", "time", "process", "usage_since", "preempt")

    def __init__(
        self,
        resource: "Resource",
        priority: float = 0.0,
        preempt: bool = False,
    ) -> None:
        # Event.__init__ inlined: one Request per bus transaction / disk
        # command makes this constructor hot.
        env = resource.env
        self.env = env
        self.name = None
        self._state = 0  # PENDING
        self._value = None
        self._ok = True
        self.callbacks = []
        self.defused = False
        self.resource = resource
        self.priority = priority
        self.preempt = preempt
        self.time = env.now
        self.process: Optional["Process"] = env.active_process
        #: set when the request is granted
        self.usage_since: Optional[float] = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def _sort_key(self, seq: int) -> tuple[float, float, int]:
        return (self.priority, self.time, seq)


class Resource:
    """A counted resource granting up to ``capacity`` simultaneous claims.

    Waiters are served in ``(priority, request time, FIFO)`` order; lower
    priority values are served first (priority 0 beats priority 1), which
    matches both PCI arbitration rank and RTOS task priority conventions
    used elsewhere in this project.
    """

    def __init__(self, env: "Environment", capacity: int = 1, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self._waiters: list[tuple[tuple[float, float, int], Request]] = []
        self._seq = 0
        #: cumulative busy integral for utilization accounting
        self._busy_time = 0.0
        self._busy_since: Optional[float] = None

    # -- public API ----------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._waiters)

    def request(self, priority: float = 0.0, preempt: bool = False) -> Request:
        """Claim the resource; the returned event triggers when granted."""
        req = Request(self, priority=priority, preempt=preempt)
        self._seq += 1
        if len(self.users) < self.capacity:
            self._grant(req)
        elif preempt and self._try_preempt(req):
            self._grant(req)
        else:
            heapq.heappush(self._waiters, (req._sort_key(self._seq), req))
        return req

    def release(self, request: Request) -> None:
        """Return a granted claim; wakes the best waiter if any.

        Releasing a still-queued request cancels it. Releasing twice is a
        no-op, so ``with`` blocks compose with explicit early release.
        """
        if request in self.users:
            self.users.remove(request)
            self._account_busy()
            self._wake()
        else:
            # Cancel if still waiting. Removing the tail leaves the heap
            # invariant intact, so only a mid-heap removal pays the O(n)
            # re-heapify (the common cancel — the most recently queued,
            # worst-priority waiter — sits at or near the tail).
            for i, (_key, waiter) in enumerate(self._waiters):
                if waiter is request:
                    if i == len(self._waiters) - 1:
                        self._waiters.pop()
                    else:
                        del self._waiters[i]
                        heapq.heapify(self._waiters)
                    break

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of [since, now] the resource spent non-idle."""
        span = self.env.now - since
        if span <= 0:
            return 0.0
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return min(1.0, busy / span)

    # -- internals -------------------------------------------------------------
    def _grant(self, req: Request) -> None:
        self.users.append(req)
        req.usage_since = self.env.now
        if self._busy_since is None:
            self._busy_since = self.env.now
        req.succeed()

    def _account_busy(self) -> None:
        if not self.users and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None

    def _wake(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            _key, req = heapq.heappop(self._waiters)
            self._grant(req)

    def _try_preempt(self, req: Request) -> bool:
        """Evict the worst current user if *req* outranks it."""
        victim = max(self.users, key=lambda u: (u.priority, u.time))
        if (victim.priority, victim.time) <= (req.priority, req.time):
            return False
        self.users.remove(victim)
        self._account_busy()
        if victim.process is not None and victim.process.is_alive:
            victim.process.interrupt(
                Preempted(by=req.process, usage_since=victim.usage_since or 0.0, resource=self)
            )
        return True

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} {len(self.users)}/{self.capacity} "
            f"queued={len(self._waiters)}>"
        )


class PreemptiveResource(Resource):
    """Resource whose ``request(preempt=True)`` evicts lower-priority users."""

    def request(self, priority: float = 0.0, preempt: bool = True) -> Request:
        return super().request(priority=priority, preempt=preempt)


class StorePut(Event):
    """Pending put into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        self.env = store.env
        self.name = None
        self._state = 0  # PENDING
        self._value = None
        self._ok = True
        self.callbacks = []
        self.defused = False
        self.item = item


class StoreGet(Event):
    """Pending get from a :class:`Store`; value is the retrieved item."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None) -> None:
        self.env = store.env
        self.name = None
        self._state = 0  # PENDING
        self._value = None
        self._ok = True
        self.callbacks = []
        self.defused = False
        self.filter = filter


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put`` blocks when full; ``get`` blocks when no (matching) item exists.
    Used as the message channel for I2O queues and frame hand-off between
    producers and the scheduler.
    """

    def __init__(
        self, env: "Environment", capacity: float = float("inf"), name: Optional[str] = None
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._puts: list[StorePut] = []
        self._gets: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._puts.append(ev)
        self._dispatch()
        return ev

    def put_nowait(self, item: Any) -> None:
        """Deposit *item* without a completion event.

        For fire-and-forget producers into effectively unbounded channels
        (network inboxes, reply queues): the evented :meth:`put` costs a
        kernel event per item that nobody ever waits on. Raises
        :class:`SimulationError` if the store is full — callers must only
        use this where capacity is not a constraint.
        """
        if len(self.items) >= self.capacity:
            raise SimulationError(
                f"put_nowait into full store {self.name!r} "
                f"({len(self.items)}/{self.capacity})"
            )
        self.items.append(item)
        if self._gets:
            self._dispatch()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        ev = StoreGet(self, filter=filter)
        self._gets.append(ev)
        self._dispatch()
        return ev

    def cancel(self, event: Event) -> None:
        """Withdraw a pending put/get."""
        if isinstance(event, StorePut) and event in self._puts:
            self._puts.remove(event)
        elif isinstance(event, StoreGet) and event in self._gets:
            self._gets.remove(event)

    def _dispatch(self) -> None:
        items = self.items
        puts = self._puts
        gets = self._gets
        capacity = self.capacity
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while capacity remains.
            while puts and len(items) < capacity:
                put = puts.pop(0)
                items.append(put.item)
                put.succeed()
                progressed = True
            # Serve pending gets with matching items.
            i = 0
            while i < len(gets):
                get = gets[i]
                matched = None
                for j, item in enumerate(items):
                    if get.filter is None or get.filter(item):
                        matched = j
                        break
                if matched is None:
                    i += 1
                    continue
                item = items.pop(matched)
                gets.pop(i)
                get.succeed(item)
                progressed = True

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Store{label} items={len(self.items)} gets={len(self._gets)}>"
