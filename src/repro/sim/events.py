"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with an optional value. Processes
wait on events by ``yield``-ing them; arbitrary callbacks may also be
attached. Composite conditions (:class:`AllOf`, :class:`AnyOf`) allow a
process to wait for conjunctions/disjunctions of events.

The design follows the SimPy event model closely enough that readers familiar
with SimPy can navigate it, but it is an independent implementation tuned for
this reproduction (deterministic ordering, microsecond time base).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "ConditionValue"]

# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled for processing, value fixed
PROCESSED = 2  # callbacks have run

#: default queue priority — must match ``environment.NORMAL`` (the
#: environment imports this module, so the constant lives here too)
_NORMAL = 1


class Event:
    """A one-shot event that may succeed with a value or fail with an error.

    Parameters
    ----------
    env:
        Owning environment.
    name:
        Optional debug label shown in ``repr``.
    """

    __slots__ = ("env", "name", "_state", "_value", "_ok", "callbacks", "defused")

    def __init__(self, env: "Environment", name: Optional[str] = None) -> None:
        self.env = env
        self.name = name
        self._state = PENDING
        self._value: Any = None
        self._ok = True
        self.callbacks: list[Callable[["Event"], None]] = []
        #: a failed event whose exception was delivered to a waiter is
        #: "defused"; undefused failures crash the run at process exit.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value/exception has been fixed for this event."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if self._state == PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._state == PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fix a success value and schedule callback processing now."""
        if self._state:  # != PENDING (0)
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        # inlined Environment._schedule_event(delay=0): triggering is the
        # hottest scheduling site in every workload. ``env._push`` is the
        # queue's bound insert (a C partial of heappush for the reference
        # heap, the calendar queue's ``push`` otherwise).
        env = self.env
        seq = env._seq = env._seq + 1
        env._push((env.now, _NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fix a failure and schedule callback processing now."""
        if self._state:  # != PENDING (0)
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        env = self.env
        seq = env._seq = env._seq + 1
        env._push((env.now, _NORMAL, seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of *event* onto this event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- kernel hooks --------------------------------------------------------
    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}[
            self._state
        ]
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers *delay* time units after its creation."""

    __slots__ = ("delay",)

    def __init__(
        self, env: "Environment", delay: float, value: Any = None, name: Optional[str] = None
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Event.__init__ + _schedule_event inlined: timeouts are created by
        # the hundred-thousand per run (every compute/sleep/wire delay)
        self.env = env
        self.name = name
        self._state = PENDING
        self._ok = True
        self._value = value
        self.callbacks = []
        self.defused = False
        self.delay = delay
        # A timeout's outcome is fixed at creation but it only *triggers*
        # when the clock reaches it: waiters created meanwhile must block.
        seq = env._seq = env._seq + 1
        env._push((env.now + delay, _NORMAL, seq, self))

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise SimulationError("Timeout events trigger themselves")


class ConditionValue:
    """Ordered mapping of events to values for triggered condition members."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for e in self._events:
            if e.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._remaining = len(self._events)
        for e in self._events:
            if e.triggered:
                self._on_member(e)
            else:
                e.callbacks.append(self._on_member)
        if not self._events and self._state == PENDING:
            # Empty condition is immediately satisfied.
            self.succeed(ConditionValue())

    def _collect(self) -> ConditionValue:
        value = ConditionValue()
        for e in self._events:
            if e.triggered and e not in value.events:
                value.events.append(e)
        return value

    def _on_member(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._satisfied(event):
            self.succeed(self._collect())

    def _satisfied(self, event: Event) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every member event has triggered."""

    __slots__ = ()

    def _satisfied(self, event: Event) -> bool:
        return self._remaining <= 0


class AnyOf(_Condition):
    """Triggers as soon as any member event triggers."""

    __slots__ = ()

    def _satisfied(self, event: Event) -> bool:
        return True
