"""Measurement helpers: time-series recorders and summary statistics.

Every figure in the paper is a time series (CPU utilization, per-stream
bandwidth, per-frame queuing delay); :class:`TimeSeries` records the raw
samples and offers the resampling/summarization the experiment harness uses
to print figure data.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

__all__ = ["TimeSeries", "TallyStats", "RateEstimator"]


class TimeSeries:
    """Append-only (time, value) series with windowed queries.

    Times must be non-decreasing (they come from the simulation clock).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"times must be non-decreasing: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with start <= t < end (vectorized slice, no copy loops)."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end)
        # bisect_right includes t == end; trim to half-open interval.
        while hi > lo and self._times[hi - 1] >= end:
            hi -= 1
        return self.times[lo:hi], self.values[lo:hi]

    def mean(self, start: float = -math.inf, end: float = math.inf) -> float:
        _t, v = self.window(max(start, -1e30), min(end, 1e30))
        return float(v.mean()) if v.size else math.nan

    def maximum(self, start: float = -math.inf, end: float = math.inf) -> float:
        _t, v = self.window(max(start, -1e30), min(end, 1e30))
        return float(v.max()) if v.size else math.nan

    def resample(self, bin_width: float, start: float = 0.0, end: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Bin-average the series into fixed-width bins (for figure output).

        Empty bins produce NaN so gaps are visible rather than interpolated.
        """
        t, v = self.times, self.values
        if end is None:
            end = float(t[-1]) if t.size else start
        nbins = max(1, int(math.ceil((end - start) / bin_width)))
        edges = start + bin_width * np.arange(nbins + 1)
        idx = np.clip(np.digitize(t, edges) - 1, 0, nbins - 1)
        mask = (t >= start) & (t < end)
        sums = np.bincount(idx[mask], weights=v[mask], minlength=nbins)
        counts = np.bincount(idx[mask], minlength=nbins)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        centers = edges[:-1] + bin_width / 2.0
        return centers, means


class TallyStats:
    """Streaming scalar statistics (count/mean/min/max/variance).

    Welford's algorithm — O(1) memory for million-sample runs.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (
            f"<TallyStats {self.name!r} n={self.count} mean={self.mean:.3f} "
            f"min={self.min:.3f} max={self.max:.3f}>"
        )


class RateEstimator:
    """Sliding-window throughput estimator (bits/bytes per second).

    ``add(time, amount)`` records a delivery; ``rate(now)`` returns the
    amount-per-second over the trailing window. Used for the bandwidth
    figures (paper plots bps sampled over time).
    """

    def __init__(self, window_us: float = 1_000_000.0) -> None:
        self.window_us = window_us
        self._times: list[float] = []
        self._amounts: list[float] = []

    def add(self, time: float, amount: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("times must be non-decreasing")
        self._times.append(time)
        self._amounts.append(amount)

    def rate(self, now: float) -> float:
        """Amount per second over [now - window, now]."""
        lo = bisect_left(self._times, now - self.window_us)
        hi = bisect_right(self._times, now)
        total = sum(self._amounts[lo:hi])
        return total * 1_000_000.0 / self.window_us

    def cumulative(self) -> float:
        return sum(self._amounts)
