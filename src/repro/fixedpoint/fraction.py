"""Integer fraction type used by the fixed-point scheduler build.

The paper (§4.2): *"arguments are simply stored as fractions with numerator
and denominator with divisions implemented as shifts"* and *"the scheduler
operations require fractional values to one or two decimal places
(implemented easily with a structure representing a fraction)"*.

``Fraction`` here is that structure: two machine integers, compared by
cross-multiplication so no division is ever needed for the scheduler's
ordering decisions (which is where DWCS spends its arithmetic — comparing
window-constraints x'/y').
"""

from __future__ import annotations

from math import gcd
from typing import Union

__all__ = ["Fraction"]

Number = Union[int, float, "Fraction"]


class Fraction:
    """An exact non-negative rational with integer numerator/denominator.

    Deliberately *not* auto-normalizing: DWCS window constraints keep their
    raw (x', y') representation because the pair itself carries meaning
    (numerator = losses still tolerable, denominator = window remaining).
    Use :meth:`normalized` when a canonical form is wanted.
    """

    __slots__ = ("num", "den")

    def __init__(self, num: int, den: int) -> None:
        if not isinstance(num, int) or not isinstance(den, int):
            raise TypeError("Fraction components must be int")
        if den <= 0:
            raise ValueError(f"denominator must be positive, got {den}")
        if num < 0:
            raise ValueError(f"numerator must be non-negative, got {num}")
        self.num = num
        self.den = den

    # -- conversion -----------------------------------------------------------
    @property
    def value(self) -> float:
        """Floating-point value (for reporting only, never for scheduling)."""
        return self.num / self.den

    def normalized(self) -> "Fraction":
        g = gcd(self.num, self.den)
        return Fraction(self.num // g, self.den // g) if g > 1 else self

    # -- exact comparisons (cross-multiplication: two int multiplies) ---------
    def _cmp(self, other: "Fraction") -> int:
        lhs = self.num * other.den
        rhs = other.num * self.den
        return (lhs > rhs) - (lhs < rhs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fraction):
            return NotImplemented
        return self._cmp(other) == 0

    def __lt__(self, other: "Fraction") -> bool:
        return self._cmp(other) < 0

    def __le__(self, other: "Fraction") -> bool:
        return self._cmp(other) <= 0

    def __gt__(self, other: "Fraction") -> bool:
        return self._cmp(other) > 0

    def __ge__(self, other: "Fraction") -> bool:
        return self._cmp(other) >= 0

    def __hash__(self) -> int:
        n = self.normalized()
        return hash((n.num, n.den))

    # -- arithmetic --------------------------------------------------------------
    def __add__(self, other: "Fraction") -> "Fraction":
        return Fraction(self.num * other.den + other.num * self.den, self.den * other.den)

    def __sub__(self, other: "Fraction") -> "Fraction":
        num = self.num * other.den - other.num * self.den
        if num < 0:
            raise ValueError("Fraction subtraction went negative")
        return Fraction(num, self.den * other.den)

    def __mul__(self, other: "Fraction") -> "Fraction":
        return Fraction(self.num * other.num, self.den * other.den)

    def is_zero(self) -> bool:
        return self.num == 0

    def __bool__(self) -> bool:
        return self.num != 0

    def __repr__(self) -> str:
        return f"Fraction({self.num}/{self.den})"
