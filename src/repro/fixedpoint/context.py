"""Arithmetic contexts: software floating point vs. fixed point.

The DWCS scheduler performs all constraint arithmetic through one of these
contexts. Both produce *identical scheduling decisions* (the paper: "Using
the fixed point version does not affect the quality of scheduling"); they
differ only in which abstract operations they tally, and therefore in how
many microseconds the CPU model charges:

* :class:`SoftwareFloatContext` — every arithmetic step is a (software
  emulated) floating-point op. On the i960 RD (no FPU) the VxWorks software
  FP library makes each such op dozens of times more expensive than an ALU
  op; the paper measures ≈20 µs extra per scheduling decision.
* :class:`FixedPointContext` — integer cross-multiplication for fraction
  comparison, shifts for division: pure ALU work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .fixed import FixedQ16
from .fraction import Fraction
from .opcount import OpCounter

__all__ = ["ArithmeticContext", "SoftwareFloatContext", "FixedPointContext"]


class ArithmeticContext(ABC):
    """Op-counted arithmetic over window-constraint fractions."""

    #: short label used in experiment output tables
    label: str = "abstract"

    def __init__(self, ops: OpCounter | None = None) -> None:
        #: the ledger that every operation tallies into
        self.ops = ops if ops is not None else OpCounter()

    # -- interface ---------------------------------------------------------
    @abstractmethod
    def compare(self, a: Fraction, b: Fraction) -> int:
        """-1/0/+1 ordering of two constraint fractions."""

    @abstractmethod
    def is_zero(self, a: Fraction) -> bool:
        """True when the fraction's value is zero."""

    @abstractmethod
    def ratio(self, num: int, den: int) -> float:
        """Evaluate num/den (bandwidth shares, utilization fractions)."""

    # -- shared helpers ------------------------------------------------------
    def lt(self, a: Fraction, b: Fraction) -> bool:
        return self.compare(a, b) < 0

    def eq(self, a: Fraction, b: Fraction) -> bool:
        return self.compare(a, b) == 0


class SoftwareFloatContext(ArithmeticContext):
    """Arithmetic via (emulated) floating point.

    Mirrors the convenience-first build the paper describes: "The VxWorks
    software FP library simply eases the development process by allowing
    float datatypes in the code".
    """

    label = "software-fp"

    def compare(self, a: Fraction, b: Fraction) -> int:
        # Two int->float conversions, two fp divides, one fp compare.
        self.ops.fp_ops += 5
        self.ops.mem_reads += 4  # load both numerators and denominators
        self.ops.branches += 1
        av, bv = a.num / a.den, b.num / b.den
        return (av > bv) - (av < bv)

    def is_zero(self, a: Fraction) -> bool:
        self.ops.fp_ops += 2  # convert + compare against 0.0
        self.ops.mem_reads += 1
        self.ops.branches += 1
        return a.num / a.den == 0.0

    def ratio(self, num: int, den: int) -> float:
        self.ops.fp_ops += 3  # two converts + divide
        return num / den


class FixedPointContext(ArithmeticContext):
    """Arithmetic via integers, cross-multiplication, and shifts."""

    label = "fixed-point"

    def compare(self, a: Fraction, b: Fraction) -> int:
        # Two integer multiplies + compare (no division at all).
        self.ops.int_ops += 3
        self.ops.mem_reads += 4
        self.ops.branches += 1
        lhs, rhs = a.num * b.den, b.num * a.den
        return (lhs > rhs) - (lhs < rhs)

    def is_zero(self, a: Fraction) -> bool:
        self.ops.int_ops += 1
        self.ops.mem_reads += 1
        self.ops.branches += 1
        return a.num == 0

    def ratio(self, num: int, den: int) -> float:
        # Shift-based division against the nearest power-of-two denominator,
        # exactly as the paper's fixed-point build does; the result keeps
        # one-two decimal places of precision, enough for the scheduler.
        self.ops.int_ops += 1
        self.ops.shifts += 1
        if den <= 0:
            raise ZeroDivisionError("ratio denominator must be positive")
        return FixedQ16.from_fraction(num, den).to_float()
