"""Q16.16 fixed-point scalar with shift-based division.

Models the arithmetic available to the fixed-point scheduler build on the
i960 RD: 32-bit integers, shifts for power-of-two division, and integer
multiply. One or two decimal places of precision (what the paper says the
scheduler needs) fit comfortably in 16 fractional bits (resolution ≈1.5e-5).
"""

from __future__ import annotations

from typing import Union

__all__ = ["FixedQ16", "FRACTION_BITS", "SCALE"]

FRACTION_BITS = 16
SCALE = 1 << FRACTION_BITS

# 32-bit two's-complement saturation bounds for the raw representation.
_RAW_MAX = (1 << 31) - 1
_RAW_MIN = -(1 << 31)


class FixedQ16:
    """Signed Q16.16 fixed-point number (saturating, like embedded code)."""

    __slots__ = ("raw",)

    def __init__(self, raw: int) -> None:
        """Build from a raw scaled integer. Use the ``from_*`` constructors."""
        if not isinstance(raw, int):
            raise TypeError("raw representation must be int")
        self.raw = self._saturate(raw)

    @staticmethod
    def _saturate(raw: int) -> int:
        return max(_RAW_MIN, min(_RAW_MAX, raw))

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_int(cls, value: int) -> "FixedQ16":
        return cls(value << FRACTION_BITS if value >= 0 else -((-value) << FRACTION_BITS))

    @classmethod
    def from_float(cls, value: float) -> "FixedQ16":
        """Host-side convenience (tests/verification); not used on the 'NI'."""
        return cls(int(round(value * SCALE)))

    @classmethod
    def from_fraction(cls, num: int, den: int) -> "FixedQ16":
        """num/den as fixed point; exact shift when den is a power of two."""
        if den <= 0:
            raise ValueError("denominator must be positive")
        scaled = num << FRACTION_BITS if num >= 0 else -((-num) << FRACTION_BITS)
        if den & (den - 1) == 0:
            return cls(scaled >> den.bit_length() - 1)
        return cls(scaled // den)

    # -- conversion ------------------------------------------------------------
    def to_float(self) -> float:
        return self.raw / SCALE

    def to_int(self) -> int:
        """Truncate toward negative infinity (arithmetic shift semantics)."""
        return self.raw >> FRACTION_BITS

    # -- arithmetic ---------------------------------------------------------------
    def __add__(self, other: "FixedQ16") -> "FixedQ16":
        return FixedQ16(self.raw + other.raw)

    def __sub__(self, other: "FixedQ16") -> "FixedQ16":
        return FixedQ16(self.raw - other.raw)

    def __mul__(self, other: "FixedQ16") -> "FixedQ16":
        return FixedQ16((self.raw * other.raw) >> FRACTION_BITS)

    def shift_div(self, power: int) -> "FixedQ16":
        """Divide by 2**power via arithmetic shift (the paper's idiom)."""
        if power < 0:
            raise ValueError("shift amount must be non-negative")
        return FixedQ16(self.raw >> power)

    def __truediv__(self, other: "FixedQ16") -> "FixedQ16":
        if other.raw == 0:
            raise ZeroDivisionError("fixed-point division by zero")
        return FixedQ16((self.raw << FRACTION_BITS) // other.raw)

    def __neg__(self) -> "FixedQ16":
        return FixedQ16(-self.raw)

    # -- comparisons -----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedQ16):
            return NotImplemented
        return self.raw == other.raw

    def __lt__(self, other: "FixedQ16") -> bool:
        return self.raw < other.raw

    def __le__(self, other: "FixedQ16") -> bool:
        return self.raw <= other.raw

    def __gt__(self, other: "FixedQ16") -> bool:
        return self.raw > other.raw

    def __ge__(self, other: "FixedQ16") -> bool:
        return self.raw >= other.raw

    def __hash__(self) -> int:
        return hash(self.raw)

    def __repr__(self) -> str:
        return f"FixedQ16({self.to_float():.5f})"
