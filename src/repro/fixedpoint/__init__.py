"""Fixed-point arithmetic substrate for the embedded scheduler build.

The i960 RD is an I/O co-processor with no floating-point unit; the paper
builds the DWCS scheduler twice — once on the VxWorks software-FP library,
once on a hand-rolled fraction/shift fixed-point representation — and
measures ≈20 µs/decision difference (Tables 1–2). This package provides both
arithmetic paths with identical decision semantics and an op-count ledger the
CPU cost model consumes.
"""

from .context import ArithmeticContext, FixedPointContext, SoftwareFloatContext
from .fixed import FRACTION_BITS, SCALE, FixedQ16
from .fraction import Fraction
from .opcount import OpCounter

__all__ = [
    "Fraction",
    "FixedQ16",
    "FRACTION_BITS",
    "SCALE",
    "OpCounter",
    "ArithmeticContext",
    "SoftwareFloatContext",
    "FixedPointContext",
]
