"""Abstract operation accounting.

The reproduction times code by *counting operations* while the real algorithm
executes, then converting counts to microseconds with a CPU cost model
(:mod:`repro.hw.cpu`). ``OpCounter`` is the ledger: every arithmetic context,
data structure, and scheduler routine tallies the work it performs here.

Operation classes mirror what mattered on the paper's hardware:

* ``fp_ops`` — floating-point operations. The i960 RD has **no FPU**; these
  are emulated by the VxWorks software floating-point library, which the
  paper measures at ≈20 µs of extra scheduling cost per decision.
* ``int_ops``/``shifts`` — native ALU work (the fixed-point build of the
  scheduler turns every division into a shift).
* ``mem_reads``/``mem_writes`` — data memory references, whose cost depends
  on whether the data cache is enabled (Tables 1 vs 2).
* ``mmio_reads``/``mmio_writes`` — accesses to the i960 RD's memory-mapped
  "hardware queue" registers (Table 3); these bypass the data cache but
  "do not generate any external bus cycles".
* ``branches`` — control flow, charged at ALU cost.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounter"]


@dataclass
class OpCounter:
    """Mutable tally of abstract machine operations."""

    int_ops: int = 0
    fp_ops: int = 0
    shifts: int = 0
    divides: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    mmio_reads: int = 0
    mmio_writes: int = 0
    branches: int = 0

    def add(self, other: "OpCounter") -> None:
        """Accumulate *other* into this counter in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __iadd__(self, other: "OpCounter") -> "OpCounter":
        self.add(other)
        return self

    def __add__(self, other: "OpCounter") -> "OpCounter":
        result = OpCounter()
        result.add(self)
        result.add(other)
        return result

    def copy(self) -> "OpCounter":
        out = OpCounter()
        out.add(self)
        return out

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def total(self) -> int:
        """Total operation count across all classes."""
        return sum(getattr(self, f.name) for f in fields(self))

    def snapshot_delta(self, since: "OpCounter") -> "OpCounter":
        """Counter holding this minus *since* (for scoped measurements)."""
        delta = OpCounter()
        for f in fields(delta):
            setattr(delta, f.name, getattr(self, f.name) - getattr(since, f.name))
        return delta

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
