"""Abstract operation accounting.

The reproduction times code by *counting operations* while the real algorithm
executes, then converting counts to microseconds with a CPU cost model
(:mod:`repro.hw.cpu`). ``OpCounter`` is the ledger: every arithmetic context,
data structure, and scheduler routine tallies the work it performs here.

Operation classes mirror what mattered on the paper's hardware:

* ``fp_ops`` — floating-point operations. The i960 RD has **no FPU**; these
  are emulated by the VxWorks software floating-point library, which the
  paper measures at ≈20 µs of extra scheduling cost per decision.
* ``int_ops``/``shifts`` — native ALU work (the fixed-point build of the
  scheduler turns every division into a shift).
* ``mem_reads``/``mem_writes`` — data memory references, whose cost depends
  on whether the data cache is enabled (Tables 1 vs 2).
* ``mmio_reads``/``mmio_writes`` — accesses to the i960 RD's memory-mapped
  "hardware queue" registers (Table 3); these bypass the data cache but
  "do not generate any external bus cycles".
* ``branches`` — control flow, charged at ALU cost.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpCounter"]

#: field names in declaration order — also the layout of :meth:`as_tuple`.
#: Kept as a static tuple so the hot accumulation paths (one ``add`` per
#: scheduling cycle, plus a copy and a delta) skip ``dataclasses.fields``
#: reflection entirely.
_FIELDS = (
    "int_ops",
    "fp_ops",
    "shifts",
    "divides",
    "mem_reads",
    "mem_writes",
    "mmio_reads",
    "mmio_writes",
    "branches",
)


@dataclass
class OpCounter:
    """Mutable tally of abstract machine operations."""

    int_ops: int = 0
    fp_ops: int = 0
    shifts: int = 0
    divides: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    mmio_reads: int = 0
    mmio_writes: int = 0
    branches: int = 0

    def add(self, other: "OpCounter") -> None:
        """Accumulate *other* into this counter in place."""
        self.int_ops += other.int_ops
        self.fp_ops += other.fp_ops
        self.shifts += other.shifts
        self.divides += other.divides
        self.mem_reads += other.mem_reads
        self.mem_writes += other.mem_writes
        self.mmio_reads += other.mmio_reads
        self.mmio_writes += other.mmio_writes
        self.branches += other.branches

    def __iadd__(self, other: "OpCounter") -> "OpCounter":
        self.add(other)
        return self

    def __add__(self, other: "OpCounter") -> "OpCounter":
        result = self.copy()
        result.add(other)
        return result

    def copy(self) -> "OpCounter":
        return OpCounter(
            self.int_ops,
            self.fp_ops,
            self.shifts,
            self.divides,
            self.mem_reads,
            self.mem_writes,
            self.mmio_reads,
            self.mmio_writes,
            self.branches,
        )

    def reset(self) -> None:
        for name in _FIELDS:
            setattr(self, name, 0)

    def total(self) -> int:
        """Total operation count across all classes."""
        return sum(self.as_tuple())

    def as_tuple(self) -> tuple[int, ...]:
        """The tally as a tuple in ``_FIELDS`` order (hashable cache key)."""
        return (
            self.int_ops,
            self.fp_ops,
            self.shifts,
            self.divides,
            self.mem_reads,
            self.mem_writes,
            self.mmio_reads,
            self.mmio_writes,
            self.branches,
        )

    def snapshot_delta(self, since: "OpCounter") -> "OpCounter":
        """Counter holding this minus *since* (for scoped measurements)."""
        return OpCounter(
            self.int_ops - since.int_ops,
            self.fp_ops - since.fp_ops,
            self.shifts - since.shifts,
            self.divides - since.divides,
            self.mem_reads - since.mem_reads,
            self.mem_writes - since.mem_writes,
            self.mmio_reads - since.mmio_reads,
            self.mmio_writes - since.mmio_writes,
            self.branches - since.branches,
        )

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _FIELDS}
