#!/usr/bin/env python3
"""Cluster-scale streaming: NI-to-NI frame movement across a SAN.

The paper's server is "16 quad Pentium Pro nodes connected via I2O-based
NIs" where media may flow between nodes entirely through the network
interfaces. This example builds a 4-node cluster, streams 200 frames from a
storage node's NI to a delivery node's NI across the SAN switch, and shows
the traffic-elimination ledger: every host system bus stays at zero bytes.

Run:  python examples/cluster_streaming.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.media import MPEGEncoder
from repro.server import Cluster
from repro.sim import Environment, RandomStreams, S, TallyStats


def main() -> None:
    env = Environment()
    cluster = Cluster(env, n_nodes=4)
    print(f"cluster: {len(cluster)} nodes, SAN ports {cluster.san.port_names}")

    encoder = MPEGEncoder(bitrate_bps=1_500_000.0, fps=30.0, rng=RandomStreams(7))
    movie = encoder.encode("asset", n_frames=200)

    latency = TallyStats("ni-to-ni")

    def mover():
        # storage on node 0, delivery from node 3
        for frame in movie.frames:
            lat = yield from cluster.send_between_nodes(
                0, 3, frame.size_bytes, stream_id="asset", seqno=frame.seqno
            )
            latency.add(lat)
            yield env.timeout(33_333.0)  # 30 fps pacing

    env.process(mover())
    env.run(until=10 * S)

    print(f"frames moved      : {latency.count}")
    print(f"NI-to-NI latency  : mean {latency.mean / 1000:.2f} ms, "
          f"max {latency.max / 1000:.2f} ms")
    print(f"bytes across SAN  : {movie.size_bytes if latency.count == len(movie) else 'partial'}")
    print("host system-bus traffic per node (traffic elimination):")
    for name, traffic in cluster.host_bus_traffic().items():
        print(f"  {name}: {traffic} bytes")


if __name__ == "__main__":
    main()
