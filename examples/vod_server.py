#!/usr/bin/env python3
"""A small video-on-demand node assembled from every substrate.

Pulls the library's pieces together the way a downstream user would:

* movies live as real bytes (MPEG elementary streams) on a **striped
  volume** (4 disks, Tiger-style), parsed back into frames by the
  **bitstream segmenter**;
* an **admission controller** gates client requests against the NI
  scheduler's measured per-frame cost;
* admitted streams flow through the **NI-resident DWCS scheduler**;
* a **tracer** on the scheduler explains what happened, per stream.

Run:  python examples/vod_server.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import AdmissionController, StreamSpec
from repro.hw import EthernetSwitch, SCSIDisk, StripedFS, StripedVolume
from repro.media import BitstreamSegmenter, MPEGEncoder, serialize
from repro.server import NIStreamingService, ServerNode
from repro.sim import Environment, RandomStreams, S, Tracer


def main() -> None:
    env = Environment()
    node = ServerNode(env, n_cpus=2)
    switch = EthernetSwitch(env)
    service = NIStreamingService(env, node, switch)
    tracer = Tracer(env)
    service.scheduler.tracer = tracer

    # -- the content library: encode and serialize two movies -------------
    encoder = MPEGEncoder(bitrate_bps=400_000.0, fps=10.0, rng=RandomStreams(1))
    library = {}
    for title in ("heat", "casablanca"):
        movie = encoder.encode(title, n_frames=150)
        library[title] = serialize(movie)
        print(f"encoded {title!r}: {len(library[title])} bytes on disk")

    # -- striped storage: 4 disks, one volume ------------------------------
    volume = StripedVolume(env, [SCSIDisk(env, name=f"d{i}") for i in range(4)])
    storage = StripedFS(env, volume)

    # -- admission: per-frame cost ≈ measured Table-2 value ----------------
    admission = AdmissionController(utilization_bound=0.85)
    SERVICE_US = 95.0

    def request_stream(title: str, client: str) -> bool:
        spec = StreamSpec(title, period_us=100_000.0, loss_x=1, loss_y=8)
        decision = admission.admit(spec, SERVICE_US)
        if not decision.admitted:
            print(f"REJECTED {title!r}: {decision.reason}")
            return False
        service.attach_client(client)
        service.open_stream(spec, client)
        env.process(producer(title), name=f"vod:{title}")
        print(
            f"admitted {title!r} -> {client} "
            f"(utilization {decision.projected_utilization:.4f})"
        )
        return True

    def producer(title: str):
        """Read the movie's bytes off the stripe set, segment, submit."""
        data = library[title]
        fs_file = storage.open(title, size_bytes=len(data))
        segmenter = BitstreamSegmenter(title)
        offset = 0
        chunk = 16_384
        while offset < len(data):
            got = yield from fs_file.read_next(min(chunk, len(data) - offset))
            if got == 0:
                break
            frames = segmenter.push(data[offset : offset + got])
            offset += got
            for frame in frames:
                yield from service._submit_with_backpressure(frame)
            yield env.timeout(50_000.0)  # stay ~2x ahead of 10 fps playout

    # -- clients ----------------------------------------------------------------
    request_stream("heat", "den-pc")
    request_stream("casablanca", "kitchen-pc")
    env.run(until=20 * S)

    # -- report --------------------------------------------------------------------
    print()
    for title in ("heat", "casablanca"):
        rec = service.reception(title)
        st = service.scheduler.streams[title]
        print(
            f"{title!r}: {rec.frames_received} frames to the client, "
            f"{rec.mean_bandwidth_bps(5 * S, 20 * S) / 1000:.0f} kbps, "
            f"drops={st.dropped} violations={st.violations}"
        )
    print(f"stripe volume: {volume.reads} row reads across {volume.width} disks")
    print(f"trace: {tracer.counts()} "
          f"(first decision at t={tracer.events(name='decision')[0].time_us / 1e6:.2f}s)")
    print(f"admission ledger: {admission!r}")


if __name__ == "__main__":
    main()
