#!/usr/bin/env python3
"""The paper's headline systems result, live: host-resident vs NI-resident
DWCS under web-server load.

Reproduces a compressed version of Figures 7 and 9: two 250 kbps MPEG
streams are scheduled either by a DWCS process on the (time-shared) host or
by the same algorithm on a dedicated i960 RD card, while an Apache pool is
driven through a saturating httperf burst. Prints per-level delivered
bandwidth and an ASCII bandwidth-vs-time plot.

Run:  python examples/host_vs_ni_under_load.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments import run_loading_experiment
from repro.experiments.report import ExperimentResult
from repro.sim import S

DURATION = 100 * S


def main() -> None:
    print("running 6 full loading experiments (host/ni x none/45%/60%)...\n")
    rows = []
    plots = ExperimentResult(exp_id="demo", title="bandwidth traces")
    for kind in ("host", "ni"):
        for level in ("none", "45%", "60%"):
            run = run_loading_experiment(kind, level, duration_us=DURATION)
            bw = run.settled_bandwidth("s1")
            st = run.service.scheduler.streams["s1"]
            rows.append((kind, level, bw, st.dropped, st.sent_late))
            if level in ("none", "60%"):
                series = run.bandwidth_series("s1")
                series.name = f"{kind}:{level}"
                plots.series.append(series)

    print(f"{'scheduler':>10} {'web load':>9} {'s1 bandwidth':>13} {'dropped':>8} {'late':>6}")
    for kind, level, bw, dropped, late in rows:
        print(f"{kind:>10} {level:>9} {bw / 1000:>10.0f} kbps {dropped:>8} {late:>6}")

    print()
    print("host scheduler, 60% load window (bandwidth collapses):")
    print(plots.ascii_plot("host:60%", width=64, height=10))
    print()
    print("NI scheduler, same load (immune):")
    print(plots.ascii_plot("ni:60%", width=64, height=10))


if __name__ == "__main__":
    main()
