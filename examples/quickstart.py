#!/usr/bin/env python3
"""Quickstart: stream synthetic MPEG video through the NI-resident DWCS
scheduler to a remote client.

Builds the paper's smallest interesting system: one server node with a
dedicated i960 RD scheduler card (data cache on), a disk-attached producer
card feeding it over the PCI bus (path B), a switched 100 Mbps network, and
one MPEG client. Runs 20 simulated seconds and prints delivery statistics.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import StreamSpec
from repro.hw import EthernetSwitch
from repro.media import MPEGEncoder
from repro.server import NIStreamingService, ServerNode
from repro.sim import Environment, RandomStreams, S


def main() -> None:
    env = Environment()

    # -- hardware: a quad-CPU server node and the client-facing switch ----
    node = ServerNode(env, name="server0", n_cpus=4)
    switch = EthernetSwitch(env)

    # -- the NI-resident scheduler (a dedicated, disk-less i960 RD card) --
    service = NIStreamingService(env, node, switch)
    print(f"scheduler card: {service.card}")

    # -- a client and a 256 kbps stream with loss-tolerance 1/8 -----------
    service.attach_client("living-room-pc")
    spec = StreamSpec("movie", period_us=62_500.0, loss_x=1, loss_y=8)
    service.open_stream(spec, "living-room-pc")

    # -- synthesize an MPEG-1 file and start a producer card (path B) -----
    encoder = MPEGEncoder(bitrate_bps=256_000.0, fps=16.0, rng=RandomStreams(42))
    movie = encoder.encode("movie", n_frames=400)
    print(
        f"file: {len(movie)} frames, {movie.size_bytes} bytes, "
        f"{movie.mean_bitrate_bps / 1000:.0f} kbps"
    )
    service.start_producer(movie, inject_gap_us=30_000.0)

    # -- run -----------------------------------------------------------------
    env.run(until=20 * S)

    # -- report ----------------------------------------------------------------
    rec = service.reception("movie")
    state = service.scheduler.streams["movie"]
    print()
    print(f"frames delivered : {rec.frames_received}")
    print(f"bytes delivered  : {rec.bytes_received}")
    print(f"delivered rate   : {rec.mean_bandwidth_bps(5 * S, 20 * S) / 1000:.0f} kbps")
    print(f"mean inter-frame : {rec.interarrival_us.mean / 1000:.1f} ms")
    print(f"serviced/dropped/late/violations: "
          f"{state.serviced}/{state.dropped}/{state.sent_late}/{state.violations}")
    print(f"host system-bus traffic: {node.system_bus.bytes_transferred} bytes "
          f"(the point of NI offload)")


if __name__ == "__main__":
    main()
