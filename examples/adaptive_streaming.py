#!/usr/bin/env python3
"""Adaptive quality under a congested overloaded scheduler.

The paper's intro motivates "runtime variation of delivered service
quality". Here an over-committed NI scheduler (too many streams for its
CPU) drops frames; an adaptive producer watching its own delivery ratio
walks the quality ladder down (full → anchors → intra), trading fidelity
for timeliness, and climbs back up when the overload is lifted.

Run:  python examples/adaptive_streaming.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import StreamSpec
from repro.hw import EthernetSwitch
from repro.media import MPEGEncoder, QualityAdapter, quality_ladder
from repro.server import NIStreamingService, ServerNode
from repro.sim import Environment, RandomStreams, S


def main() -> None:
    env = Environment()
    node = ServerNode(env, n_cpus=2)
    switch = EthernetSwitch(env)
    service = NIStreamingService(env, node, switch)

    # the adaptive stream: 1.5 Mbps at 30 fps — heavy for a 66 MHz card
    encoder = MPEGEncoder(bitrate_bps=1_500_000.0, fps=30.0, rng=RandomStreams(3))
    movie = encoder.encode("adaptive", n_frames=3000)
    ladder = quality_ladder(movie)
    adapter = QualityAdapter(ladder, patience=2)
    print("ladder:", {r.name: f"{r.byte_fraction:.0%}" for r in ladder})

    service.attach_client("tv")

    # background load on the same scheduler card: 22 competing streams —
    # ~700 frames/s of protocol+scheduling work, past the 66 MHz card's
    # ceiling while they run
    bg_files = []
    for i in range(22):
        sid = f"bg{i}"
        service.attach_client(f"bgc{i}")
        service.open_stream(StreamSpec(sid, period_us=33_333.0, loss_x=1, loss_y=2), f"bgc{i}")
        bg = MPEGEncoder(bitrate_bps=2_000_000.0, fps=30.0, rng=RandomStreams(10 + i))
        bg_files.append((sid, bg.encode(sid, 1200)))

    def bg_producer(sid, file, stop_at):
        # paced at playout rate: queues stay shallow, so the overload ends
        # (almost) as soon as the producers stop at t=20s
        for frame in file.frames:
            if env.now >= stop_at:
                return
            yield from service._submit_with_backpressure(frame)
            yield env.timeout(33_400.0)

    # the overload lifts at t=20s (the background streams end)
    for sid, file in bg_files:
        env.process(bg_producer(sid, file, stop_at=20 * S))

    def open_rendition(epoch, rendition):
        """QoS renegotiation: each rendition is a fresh stream whose period
        matches its actual frame rate (the deadline chain must track what
        the producer really sends)."""
        sid = f"adaptive#{epoch}"
        period = 33_333.0 * len(movie.frames) / len(rendition.frames)
        service.open_stream(
            StreamSpec(sid, period_us=period, loss_x=1, loss_y=2), "tv"
        )
        return sid, period

    def delivered_to_tv():
        return sum(
            r.frames_received
            for name, r in service.clients["tv"].receptions.items()
            if name.startswith("adaptive")
        )

    def adaptive_producer():
        rendition = adapter.rendition
        epoch = 0
        sid, period = open_rendition(epoch, rendition)
        idx = 0
        window_start_frames = 0
        window_start_t = env.now
        total_sent = 0
        while idx < len(rendition.frames):
            frame = rendition.frames[idx]
            retagged = type(frame)(
                stream_id=sid, seqno=frame.seqno, ftype=frame.ftype,
                size_bytes=frame.size_bytes, pts_us=frame.pts_us,
            )
            yield from service._submit_with_backpressure(retagged)
            total_sent += 1
            idx += 1
            yield env.timeout(period)
            # once a second, judge the delivery and maybe renegotiate
            if env.now - window_start_t >= 1 * S:
                got = delivered_to_tv() - window_start_frames
                expected = max(1, int((env.now - window_start_t) / period))
                new = adapter.observe(expected, got, now_us=env.now)
                if new is not rendition:
                    print(f"t={env.now/1e6:5.1f}s  renegotiate -> {new.name} "
                          f"(delivered {got}/{expected} this window)")
                    # resume from the same presentation time in the new one
                    idx = min(
                        range(len(new.frames)),
                        key=lambda j: abs(new.frames[j].pts_us - frame.pts_us),
                    )
                    rendition = new
                    epoch += 1
                    sid, period = open_rendition(epoch, rendition)
                window_start_frames = delivered_to_tv()
                window_start_t = env.now
        print(f"producer done: sent {total_sent} frames over {epoch + 1} epochs")

    env.process(adaptive_producer())
    env.run(until=60 * S)

    print()
    print(f"delivered to tv: {delivered_to_tv()} frames")
    drops = sum(
        st.dropped for name, st in service.scheduler.streams.items()
        if name.startswith("adaptive")
    )
    print(f"adaptive-stream drops across epochs: {drops}")
    print(f"adapter: {adapter!r}")
    print("transitions:", [(f"{t/1e6:.1f}s", adapter.ladder[l].name)
                           for t, l in adapter.transitions])


if __name__ == "__main__":
    main()
