#!/usr/bin/env python3
"""Extending the DVCM at run time with a custom instruction set.

The DVCM's extensibility story: host applications can load new 'instruction'
modules onto the NI while the system runs — "the services implemented by
the DVCM vary over time, in keeping with the needs of current cluster
applications". This example:

1. boots a VCM runtime on an i960 RD card under VxWorks;
2. loads the stock media-scheduler extension;
3. loads a *custom* telemetry extension written right here;
4. drives both from a host application thread over I2O messages.

Run:  python examples/dvcm_custom_extension.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import DWCSScheduler, StreamingEngine
from repro.dvcm import (
    ExtensionModule,
    MediaSchedulerExtension,
    MessageQueuePair,
    VCMInterface,
    VCMRuntime,
)
from repro.hw import CPU, I960RD_66, PCISegment
from repro.media import FrameType, MediaFrame
from repro.rtos import WindScheduler
from repro.sim import Environment, S


def make_telemetry_extension(card_cpu: CPU) -> ExtensionModule:
    """A user-written DVCM extension: NI-side telemetry instructions."""
    mod = ExtensionModule("telemetry")
    mod.provide("cycles", lambda payload: card_cpu.cycles_charged)
    mod.provide(
        "echo_scaled",
        lambda payload: payload["value"] * payload.get("scale", 2),
    )
    return mod


def main() -> None:
    env = Environment()
    segment = PCISegment(env, "pci0")
    queues = MessageQueuePair(env, segment, name="i2o0")
    cpu = CPU(I960RD_66)

    # NI side: VxWorks + the VCM dispatch task
    runtime = VCMRuntime(env, queues, cpu)
    vxworks = WindScheduler(env)
    vxworks.spawn("tVCM", runtime.task_body, priority=60)

    # the media scheduler as a loadable extension
    scheduler = DWCSScheduler(work_conserving=False)
    sent = []

    def transmit(desc):
        sent.append(desc)
        yield env.timeout(80.0)

    engine = StreamingEngine(env, scheduler, cpu, transmit)
    vxworks.spawn("tDWCS", engine.task_body, priority=100)
    runtime.load_extension(MediaSchedulerExtension(engine))

    # ... plus our custom extension, loaded at run time
    runtime.load_extension(make_telemetry_extension(cpu))
    print("instructions:", runtime.instruction_names)

    # host side: an application thread calling DVCM instructions
    api = VCMInterface(env, queues, name="app0")

    def app():
        yield from api.call(
            "media.open_stream",
            {"stream_id": "cam0", "period_us": 40_000.0, "loss_x": 1, "loss_y": 4},
        )
        for k in range(25):
            frame = MediaFrame("cam0", k, FrameType.I, 1400, 0.0)
            yield from api.call("media.submit_frame", {"frame": frame}, bulk_bytes=1400)
        yield env.timeout(2 * S)
        stats = yield from api.call("media.stream_stats", {"stream_id": "cam0"})
        cycles = yield from api.call("telemetry.cycles")
        scaled = yield from api.call("telemetry.echo_scaled", {"value": 21})
        return stats, cycles, scaled

    stats, cycles, scaled = env.run(until=env.process(app()))
    print(f"stream stats      : {stats}")
    print(f"NI cycles charged : {cycles:.0f}")
    print(f"echo_scaled(21)   : {scaled}")
    print(f"frames transmitted: {len(sent)}")
    print(f"PCI bytes moved   : {segment.bytes_transferred} "
          "(messages + frame bodies)")

    # unload the custom module again — the DVCM shrinks back
    runtime.unload_extension("telemetry")
    print("after unload      :", runtime.instruction_names)


if __name__ == "__main__":
    main()
